//! The SWAP-insertion routing engine.
//!
//! The engine implements the SABRE traversal (front layer / extended layer /
//! decay, eager execution of gates that already fit the device) and delegates
//! the *scoring* of SWAP candidates to a [`SwapPolicy`]. The plain SABRE
//! heuristic is provided here as [`SabrePolicy`]; the NASSC crate plugs in
//! its optimization-aware cost function through the same interface.
//!
//! # Hot-loop architecture
//!
//! The inner loop is built around incremental state so one routing pass is
//! O(gates · window) instead of quadratic in the output size:
//!
//! * the output circuit lives in a [`RoutingState`], whose per-qubit touch
//!   indices answer "which recent gates touch this pair?" in O(window) —
//!   this is what NASSC's commutation searches consume;
//! * candidate scores are evaluated against per-step cached physical
//!   endpoints ([`RoutingContext::front_distance_after_swap`]), so scoring a
//!   SWAP clones no [`Layout`] and allocates nothing;
//! * [`SwapPolicy::score`] takes `&self`, so candidate scoring is `Sync` and
//!   [`route_with_policy_on`] can fan it across a [`ThreadPool`]. The argmin
//!   reduction stays serial in shuffled candidate order, so outputs are
//!   bit-identical at every worker count;
//! * all per-step buffers (front layer, extended set, candidate edges,
//!   scores) are reused scratch owned by the routing loop.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use nassc_circuit::{DagCircuit, Gate, QuantumCircuit};
use nassc_parallel::{Budget, ThreadPool};
use nassc_topology::{CouplingMap, DistanceMatrix, Layout};

use crate::config::SabreConfig;
use crate::state::RoutingState;

/// Minimum number of SWAP candidates before a step's scoring is fanned
/// across the score pool. Below this, pool dispatch costs more than the
/// scores themselves; the threshold only redirects *where* scores are
/// computed, never what they are, so results do not depend on it.
pub const PARALLEL_SCORE_THRESHOLD: usize = 8;

/// Per-step cache of the front/extended layers' *physical* endpoints.
///
/// Candidate scoring asks for the front and extended distance after a
/// hypothetical SWAP, for every candidate. Resolving each gate's logical
/// qubits through the layout once per step (instead of once per candidate)
/// and storing the physical pairs flat lets
/// [`RoutingContext::front_distance_after_swap`] answer with a pure scan —
/// no layout clone, no DAG chasing, no allocation.
#[derive(Debug, Default)]
pub struct StepEndpoints {
    front: Vec<(u32, u32)>,
    extended: Vec<(u32, u32)>,
}

impl StepEndpoints {
    /// An empty cache (fill it with [`prepare`](Self::prepare)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves the physical endpoint pairs of `front` and `extended` under
    /// `layout`, reusing the internal buffers.
    pub fn prepare(
        &mut self,
        dag: &DagCircuit,
        front: &[usize],
        extended: &[usize],
        layout: &Layout,
    ) {
        let resolve = |node: &usize| {
            let inst = &dag.node(*node).instruction;
            (
                layout.physical_of(inst.qubit(0)) as u32,
                layout.physical_of(inst.qubit(1)) as u32,
            )
        };
        self.front.clear();
        self.front.extend(front.iter().map(resolve));
        self.extended.clear();
        self.extended.extend(extended.iter().map(resolve));
    }
}

/// The physical qubit `p` maps to after a SWAP on `(p1, p2)`.
#[inline]
fn after_swap(p: u32, p1: u32, p2: u32) -> usize {
    if p == p1 {
        p2 as usize
    } else if p == p2 {
        p1 as usize
    } else {
        p as usize
    }
}

/// Read-only view of the router's state handed to a [`SwapPolicy`] when
/// scoring a SWAP candidate.
#[derive(Debug)]
pub struct RoutingContext<'a> {
    /// The device connectivity.
    pub coupling: &'a CouplingMap,
    /// The distance matrix used by the heuristic (plain or noise-aware).
    pub distances: &'a DistanceMatrix,
    /// The current logical→physical layout (before the candidate SWAP).
    pub layout: &'a Layout,
    /// DAG node ids of the unroutable two-qubit gates in the front layer.
    pub front: &'a [usize],
    /// DAG node ids of the lookahead (extended) layer.
    pub extended: &'a [usize],
    /// The logical circuit's dependency DAG.
    pub dag: &'a DagCircuit,
    /// The physical circuit emitted so far (resolved gates and earlier
    /// SWAPs), with its per-qubit touch index for windowed queries.
    pub state: &'a RoutingState,
    /// The heuristic configuration.
    pub config: &'a SabreConfig,
    endpoints: &'a StepEndpoints,
}

impl<'a> RoutingContext<'a> {
    /// Builds a context over an explicitly prepared [`StepEndpoints`]
    /// (`endpoints.prepare` must have been called with the same
    /// `front`/`extended`/`layout`). The router does this once per step;
    /// exposed so tests and embedders can score candidates directly.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        coupling: &'a CouplingMap,
        distances: &'a DistanceMatrix,
        layout: &'a Layout,
        front: &'a [usize],
        extended: &'a [usize],
        dag: &'a DagCircuit,
        state: &'a RoutingState,
        config: &'a SabreConfig,
        endpoints: &'a StepEndpoints,
    ) -> Self {
        Self {
            coupling,
            distances,
            layout,
            front,
            extended,
            dag,
            state,
            config,
            endpoints,
        }
    }

    /// The output circuit emitted so far.
    pub fn output(&self) -> &QuantumCircuit {
        self.state.circuit()
    }

    /// The summed front-layer distance under a layout (reference path; the
    /// score path uses [`front_distance_after_swap`](Self::front_distance_after_swap)).
    pub fn front_distance(&self, layout: &Layout) -> f64 {
        self.front
            .iter()
            .map(|&node| {
                let inst = &self.dag.node(node).instruction;
                let a = layout.physical_of(inst.qubit(0));
                let b = layout.physical_of(inst.qubit(1));
                self.distances.weight(a, b)
            })
            .sum()
    }

    /// The summed extended-layer distance under a layout (reference path).
    pub fn extended_distance(&self, layout: &Layout) -> f64 {
        self.extended
            .iter()
            .map(|&node| {
                let inst = &self.dag.node(node).instruction;
                let a = layout.physical_of(inst.qubit(0));
                let b = layout.physical_of(inst.qubit(1));
                self.distances.weight(a, b)
            })
            .sum()
    }

    /// The layout obtained by applying the candidate SWAP (reference path —
    /// the score path never clones a layout).
    pub fn layout_after_swap(&self, p1: usize, p2: usize) -> Layout {
        let mut trial = self.layout.clone();
        trial.swap_physical(p1, p2);
        trial
    }

    /// The summed front-layer distance after a SWAP on `(p1, p2)`, computed
    /// from the cached physical endpoints: same gates, same summation order
    /// — bit-identical to `front_distance(&layout_after_swap(p1, p2))` —
    /// with zero clones and zero allocation.
    pub fn front_distance_after_swap(&self, p1: usize, p2: usize) -> f64 {
        let (p1, p2) = (p1 as u32, p2 as u32);
        self.endpoints
            .front
            .iter()
            .map(|&(a, b)| {
                self.distances
                    .weight(after_swap(a, p1, p2), after_swap(b, p1, p2))
            })
            .sum()
    }

    /// The summed extended-layer distance after a SWAP on `(p1, p2)` (see
    /// [`front_distance_after_swap`](Self::front_distance_after_swap)).
    pub fn extended_distance_after_swap(&self, p1: usize, p2: usize) -> f64 {
        let (p1, p2) = (p1 as u32, p2 as u32);
        self.endpoints
            .extended
            .iter()
            .map(|&(a, b)| {
                self.distances
                    .weight(after_swap(a, p1, p2), after_swap(b, p1, p2))
            })
            .sum()
    }

    /// SABRE's lookahead distance term: normalised front-layer distance plus
    /// the weighted, normalised extended-layer distance, evaluated after the
    /// candidate SWAP.
    pub fn lookahead_cost(&self, p1: usize, p2: usize) -> f64 {
        let front_len = self.front.len().max(1) as f64;
        let front_term = self.front_distance_after_swap(p1, p2) / front_len;
        let extended_term = if self.extended.is_empty() {
            0.0
        } else {
            self.config.extended_set_weight * self.extended_distance_after_swap(p1, p2)
                / self.extended.len() as f64
        };
        front_term + extended_term
    }
}

/// Scoring hook for SWAP candidates plus emission callbacks.
///
/// Lower scores are better. The engine multiplies the returned score by the
/// SABRE decay factor of the two physical qubits before comparing.
///
/// [`score`](Self::score) takes `&self` — scoring must be a pure function of
/// the context and the candidate, which is what lets the engine evaluate
/// candidates in parallel while staying bit-identical to serial evaluation.
/// Mutable state belongs in the emission hooks, which run serially exactly
/// once per inserted SWAP.
pub trait SwapPolicy {
    /// Scores the SWAP on physical qubits `(p1, p2)`.
    fn score(&self, ctx: &RoutingContext<'_>, p1: usize, p2: usize) -> f64;

    /// Called just before the SWAP instruction is appended to the output,
    /// allowing the policy to rearrange trailing gates (NASSC moves
    /// single-qubit gates through the SWAP here). Mutations must go through
    /// [`RoutingState::push`]/[`RoutingState::pop`] so the touch index stays
    /// exact.
    fn before_swap_emit(
        &mut self,
        _output: &mut RoutingState,
        _layout: &Layout,
        _p1: usize,
        _p2: usize,
    ) {
    }

    /// Called after the SWAP has been appended at `swap_index`. The output
    /// is mutable so policies can re-append gates they detached in
    /// [`SwapPolicy::before_swap_emit`] (e.g. single-qubit gates commuted
    /// through the SWAP).
    fn after_swap_emit(
        &mut self,
        _output: &mut RoutingState,
        _swap_index: usize,
        _p1: usize,
        _p2: usize,
    ) {
    }
}

/// The plain SABRE heuristic: front-layer distance with extended-layer
/// lookahead (Li et al., ASPLOS 2019) — the paper's baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct SabrePolicy;

impl SwapPolicy for SabrePolicy {
    fn score(&self, ctx: &RoutingContext<'_>, p1: usize, p2: usize) -> f64 {
        ctx.lookahead_cost(p1, p2)
    }
}

/// The product of routing a circuit onto a device.
#[derive(Debug, Clone)]
pub struct RoutingResult {
    /// The physical circuit: resolved gates plus inserted SWAPs (kept as
    /// `swap` instructions so later passes can decompose them as they wish).
    pub circuit: QuantumCircuit,
    /// The layout in force before the first gate.
    pub initial_layout: Layout,
    /// The layout in force after the last gate (differs from the initial one
    /// by the net effect of the inserted SWAPs).
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
}

/// Routes a logical circuit with the given SWAP policy, serially.
///
/// Every gate of the output acts on physical qubits and every two-qubit gate
/// respects the coupling map (inserted SWAPs included).
///
/// # Panics
///
/// Panics when the device is smaller than the circuit, the coupling graph is
/// disconnected, or routing fails to make progress (which would indicate an
/// internal bug).
pub fn route_with_policy<P: SwapPolicy + Sync>(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    initial_layout: &Layout,
    config: &SabreConfig,
    policy: &mut P,
    rng: &mut StdRng,
) -> RoutingResult {
    route_with_policy_on(
        circuit,
        coupling,
        distances,
        initial_layout,
        config,
        policy,
        rng,
        &ThreadPool::new(1),
    )
}

/// [`route_with_policy`] with an explicit pool for in-pass candidate
/// scoring. The pool affects wall clock only: scores are computed in
/// candidate order either way and reduced serially, so the routed output is
/// bit-identical at any worker count.
#[allow(clippy::too_many_arguments)]
pub fn route_with_policy_on<P: SwapPolicy + Sync>(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    initial_layout: &Layout,
    config: &SabreConfig,
    policy: &mut P,
    rng: &mut StdRng,
    score_pool: &ThreadPool,
) -> RoutingResult {
    let dag = DagCircuit::from_circuit(circuit);
    route_prepared(
        &dag,
        coupling,
        distances,
        initial_layout,
        config,
        policy,
        rng,
        score_pool,
    )
}

/// [`route_with_policy_on`] over a prebuilt dependency DAG.
///
/// Layout search routes the same circuit (and its reversal) many times;
/// building the DAG once per circuit instead of once per pass is what this
/// entry point exists for.
#[allow(clippy::too_many_arguments)]
pub fn route_prepared<P: SwapPolicy + Sync>(
    dag: &DagCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    initial_layout: &Layout,
    config: &SabreConfig,
    policy: &mut P,
    rng: &mut StdRng,
    score_pool: &ThreadPool,
) -> RoutingResult {
    route_prepared_budgeted(
        dag,
        coupling,
        distances,
        initial_layout,
        config,
        policy,
        rng,
        score_pool,
        &Budget::unlimited(),
    )
}

/// [`route_prepared`] under a cooperative [`Budget`]: the routing loop
/// checks the budget once per SWAP step and aborts by unwinding with a
/// typed [`Cancelled`] payload when it is exhausted. The checkpoint is one
/// relaxed atomic load on an unexpired budget, so the routed output — and
/// its cost — is unchanged whenever the budget does not trip.
///
/// [`Cancelled`]: nassc_parallel::Cancelled
#[allow(clippy::too_many_arguments)]
pub fn route_prepared_budgeted<P: SwapPolicy + Sync>(
    dag: &DagCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    initial_layout: &Layout,
    config: &SabreConfig,
    policy: &mut P,
    rng: &mut StdRng,
    score_pool: &ThreadPool,
    budget: &Budget,
) -> RoutingResult {
    assert!(
        dag.num_qubits() <= coupling.num_qubits(),
        "circuit needs {} qubits but the device has {}",
        dag.num_qubits(),
        coupling.num_qubits()
    );
    let num_physical = coupling.num_qubits();
    let mut in_deg = dag.in_degrees();
    let mut executed = vec![false; dag.num_nodes()];
    let mut ready: Vec<usize> = dag.front_layer();
    let mut layout = initial_layout.clone();
    let mut state = RoutingState::new(num_physical);
    let mut decay = vec![1.0_f64; num_physical];
    let mut swaps_since_reset = 0usize;
    let mut swap_count = 0usize;
    let mut remaining = dag.num_nodes();

    let max_swaps = 10 + 20 * dag.num_nodes() * num_physical;
    let mut total_swaps_guard = 0usize;

    // Reusable per-step scratch: with serial scoring, nothing below
    // allocates after warm-up (parallel dispatch additionally pays
    // `map_range`'s result slots and a pool batch per step).
    let mut next_ready: Vec<usize> = Vec::new();
    let mut front: Vec<usize> = Vec::new();
    let mut extended_scratch = ExtendedScratch::new(dag.num_nodes());
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    let mut edge_seen = vec![false; num_physical * num_physical];
    let mut endpoints = StepEndpoints::new();
    let mut scores: Vec<f64> = Vec::new();

    // Trace totals, accumulated locally and emitted once per route call:
    // per-step counter events would dominate the enabled-mode overhead on
    // small circuits (and a cancellation unwinds without emitting — the
    // trace of a cancelled route is best-effort).
    let mut trace_steps = 0u64;
    let mut trace_swap_candidates = 0u64;

    while remaining > 0 {
        // A deadline mid-routing aborts here — before the step's scoring
        // fan-out, the expensive part — by unwinding with `Cancelled`.
        budget.checkpoint();
        nassc_circuit::failpoints::hit("route_step");

        // Execute everything that fits under the current layout.
        let mut progress = true;
        while progress {
            progress = false;
            next_ready.clear();
            for &node in &ready {
                if executed[node] {
                    continue;
                }
                let inst = &dag.node(node).instruction;
                let runnable = if inst.is_two_qubit() {
                    let a = layout.physical_of(inst.qubit(0));
                    let b = layout.physical_of(inst.qubit(1));
                    coupling.are_connected(a, b)
                } else {
                    true
                };
                if runnable {
                    state.push(inst.map_qubits(|q| layout.physical_of(q)));
                    executed[node] = true;
                    remaining -= 1;
                    progress = true;
                    for &succ in dag.node(node).successors() {
                        in_deg[succ] -= 1;
                        if in_deg[succ] == 0 {
                            next_ready.push(succ);
                        }
                    }
                } else {
                    next_ready.push(node);
                }
            }
            std::mem::swap(&mut ready, &mut next_ready);
            ready.sort_unstable();
            ready.dedup();
        }
        if remaining == 0 {
            break;
        }

        // The remaining ready gates are two-qubit gates that need SWAPs.
        front.clear();
        front.extend(
            ready
                .iter()
                .copied()
                .filter(|&n| !executed[n] && dag.node(n).instruction.is_two_qubit()),
        );
        assert!(
            !front.is_empty(),
            "routing stalled: unresolved gates remain but the front layer is empty"
        );
        let extended = collect_extended_set(
            dag,
            &front,
            &executed,
            config.extended_set_size,
            &mut extended_scratch,
        );

        // Candidate SWAPs: every coupling edge incident to a front-layer
        // qubit, deduplicated through a per-edge bitset (insertion order is
        // preserved, so the shuffle below sees the same vector as ever).
        candidates.clear();
        for &node in &front {
            for logical in dag.node(node).instruction.qubits().iter() {
                let p = layout.physical_of(logical);
                for &n in coupling.neighbors(p) {
                    let edge = (p.min(n), p.max(n));
                    let slot = edge.0 * num_physical + edge.1;
                    if !edge_seen[slot] {
                        edge_seen[slot] = true;
                        candidates.push(edge);
                    }
                }
            }
        }
        for &(a, b) in &candidates {
            edge_seen[a * num_physical + b] = false;
        }
        candidates.shuffle(rng);
        trace_steps += 1;
        trace_swap_candidates += candidates.len() as u64;

        endpoints.prepare(dag, &front, extended, &layout);
        let ctx = RoutingContext::new(
            coupling, distances, &layout, &front, extended, dag, &state, config, &endpoints,
        );
        scores.clear();
        let policy_ref: &P = policy;
        if score_pool.threads() > 1 && candidates.len() >= PARALLEL_SCORE_THRESHOLD {
            // Workers draw candidate indices from an atomic counter, so
            // parallel dispatch allocates nothing beyond the result slots.
            scores.extend(score_pool.map_range(candidates.len(), |i| {
                let (p1, p2) = candidates[i];
                policy_ref.score(&ctx, p1, p2)
            }));
        } else {
            scores.extend(
                candidates
                    .iter()
                    .map(|&(p1, p2)| policy_ref.score(&ctx, p1, p2)),
            );
        }
        // Serial argmin in shuffled candidate order: ties keep the first
        // minimum, exactly as the serial scoring loop always has.
        let mut best: Option<((usize, usize), f64)> = None;
        for (&(p1, p2), &raw) in candidates.iter().zip(&scores) {
            let score = raw * decay[p1].max(decay[p2]);
            if best.is_none_or(|(_, b)| score < b) {
                best = Some(((p1, p2), score));
            }
        }
        let ((p1, p2), _) = best.expect("at least one SWAP candidate");

        policy.before_swap_emit(&mut state, &layout, p1, p2);
        state.push(nassc_circuit::Instruction::new(Gate::Swap, [p1, p2]));
        let swap_index = state.num_gates() - 1;
        policy.after_swap_emit(&mut state, swap_index, p1, p2);
        layout.swap_physical(p1, p2);
        swap_count += 1;
        total_swaps_guard += 1;
        assert!(
            total_swaps_guard <= max_swaps,
            "routing exceeded the SWAP budget; the coupling graph may be disconnected"
        );
        decay[p1] += config.decay_delta;
        decay[p2] += config.decay_delta;
        swaps_since_reset += 1;
        if swaps_since_reset >= config.decay_reset_interval {
            decay.iter_mut().for_each(|d| *d = 1.0);
            swaps_since_reset = 0;
        }
    }

    nassc_trace::counter("route.steps", trace_steps);
    nassc_trace::counter("route.swap_candidates", trace_swap_candidates);

    RoutingResult {
        circuit: state.into_circuit(),
        initial_layout: initial_layout.clone(),
        final_layout: layout,
        swap_count,
    }
}

/// Routes with the plain SABRE heuristic.
pub fn sabre_route(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    initial_layout: &Layout,
    config: &SabreConfig,
    rng: &mut StdRng,
) -> RoutingResult {
    route_with_policy(
        circuit,
        coupling,
        distances,
        initial_layout,
        config,
        &mut SabrePolicy,
        rng,
    )
}

/// Reusable buffers for [`collect_extended_set`]: the BFS queue, the visited
/// bitmap (cleared via the touched list, so a step costs O(visited) rather
/// than O(nodes)) and the output vector.
struct ExtendedScratch {
    queue: VecDeque<usize>,
    seen: Vec<bool>,
    seen_touched: Vec<usize>,
    extended: Vec<usize>,
}

impl ExtendedScratch {
    fn new(num_nodes: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            seen: vec![false; num_nodes],
            seen_touched: Vec::new(),
            extended: Vec::new(),
        }
    }
}

/// Collects up to `limit` not-yet-executed two-qubit gates reachable from the
/// front layer — the lookahead (extended) layer. Returns a slice into the
/// scratch's output buffer.
fn collect_extended_set<'s>(
    dag: &DagCircuit,
    front: &[usize],
    executed: &[bool],
    limit: usize,
    scratch: &'s mut ExtendedScratch,
) -> &'s [usize] {
    for node in scratch.seen_touched.drain(..) {
        scratch.seen[node] = false;
    }
    scratch.queue.clear();
    scratch.extended.clear();
    for &node in front {
        if !scratch.seen[node] {
            scratch.seen[node] = true;
            scratch.seen_touched.push(node);
        }
        scratch.queue.push_back(node);
    }
    while let Some(node) = scratch.queue.pop_front() {
        if scratch.extended.len() >= limit {
            break;
        }
        for &succ in dag.node(node).successors() {
            if !scratch.seen[succ] {
                scratch.seen[succ] = true;
                scratch.seen_touched.push(succ);
                if !executed[succ] {
                    if dag.node(succ).instruction.is_two_qubit() {
                        scratch.extended.push(succ);
                        if scratch.extended.len() >= limit {
                            break;
                        }
                    }
                    scratch.queue.push_back(succ);
                }
            }
        }
    }
    &scratch.extended
}

/// Returns a uniformly random tie-broken integer in `0..n` (helper for
/// policies that need reproducible randomness).
pub fn random_index(rng: &mut StdRng, n: usize) -> usize {
    rng.gen_range(0..n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::circuits_equivalent_up_to_permutation;
    use nassc_passes::is_mapped;
    use rand::SeedableRng;

    fn route(circuit: &QuantumCircuit, coupling: &CouplingMap, seed: u64) -> RoutingResult {
        let config = SabreConfig::with_seed(seed);
        let distances = coupling.distance_matrix();
        let layout = Layout::trivial(coupling.num_qubits());
        let mut rng = StdRng::seed_from_u64(seed);
        sabre_route(circuit, coupling, &distances, &layout, &config, &mut rng)
    }

    /// Expands SWAPs so the equivalence checker sees plain unitaries and
    /// verifies the routed circuit implements the original (up to the final
    /// qubit permutation induced by the SWAPs and layout).
    fn assert_routing_preserves_semantics(original: &QuantumCircuit, result: &RoutingResult) {
        // Embed the original on the device width with the initial layout.
        let device_width = result.circuit.num_qubits();
        let embedded = original.map_qubits(device_width, |q| result.initial_layout.physical_of(q));
        let perm = result.initial_layout.permutation_to(&result.final_layout);
        // The routed circuit applies: initial-embedding followed by extra
        // SWAPs, so original ∘ permutation == routed.
        assert!(
            circuits_equivalent_up_to_permutation(&embedded, &result.circuit, &perm, 1e-7),
            "routing changed circuit semantics"
        );
    }

    #[test]
    fn already_mapped_circuit_needs_no_swaps() {
        let line = CouplingMap::linear(3);
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2);
        let result = route(&qc, &line, 1);
        assert_eq!(result.swap_count, 0);
        assert_eq!(result.circuit.num_gates(), 3);
    }

    #[test]
    fn routes_distant_cnot_on_a_line() {
        let line = CouplingMap::linear(4);
        let mut qc = QuantumCircuit::new(4);
        qc.cx(0, 3);
        let result = route(&qc, &line, 3);
        assert!(result.swap_count >= 2);
        assert!(is_mapped(&result.circuit, &line));
        assert_routing_preserves_semantics(&qc, &result);
    }

    #[test]
    fn figure1_linear_example_routes_with_one_swap() {
        // The paper's Figure 1: gates on (1,2), (0,1), (0,2) on a 3-qubit line.
        let line = CouplingMap::linear(3);
        let mut qc = QuantumCircuit::new(3);
        qc.cx(1, 2).cx(0, 1).cx(0, 2);
        let result = route(&qc, &line, 5);
        assert_eq!(result.swap_count, 1);
        assert!(is_mapped(&result.circuit, &line));
        assert_routing_preserves_semantics(&qc, &result);
    }

    #[test]
    fn routing_preserves_semantics_on_random_circuits() {
        use rand::Rng;
        let grid = CouplingMap::grid(2, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..10 {
            let mut qc = QuantumCircuit::new(5);
            for _ in 0..15 {
                let a = rng.gen_range(0..5);
                let b = (a + rng.gen_range(1..5)) % 5;
                if rng.gen_bool(0.3) {
                    qc.h(a);
                } else {
                    qc.cx(a, b);
                }
            }
            let result = route(&qc, &grid, trial as u64);
            assert!(
                is_mapped(&result.circuit, &grid),
                "trial {trial} not mapped"
            );
            assert_routing_preserves_semantics(&qc, &result);
        }
    }

    #[test]
    fn parallel_scoring_is_bit_identical_to_serial() {
        use rand::Rng;
        let grid = CouplingMap::grid(3, 3);
        let distances = grid.distance_matrix();
        let layout = Layout::trivial(9);
        let mut gen = StdRng::seed_from_u64(5);
        for trial in 0..4 {
            let mut qc = QuantumCircuit::new(9);
            for _ in 0..40 {
                let a = gen.gen_range(0..9);
                let b = (a + gen.gen_range(1..9)) % 9;
                qc.cx(a, b);
            }
            let config = SabreConfig::with_seed(trial);
            let route_on = |threads: usize| {
                route_with_policy_on(
                    &qc,
                    &grid,
                    &distances,
                    &layout,
                    &config,
                    &mut SabrePolicy,
                    &mut StdRng::seed_from_u64(trial),
                    &ThreadPool::new(threads),
                )
            };
            let serial = route_on(1);
            for threads in [2, 8] {
                let parallel = route_on(threads);
                assert_eq!(serial.circuit, parallel.circuit, "{threads} threads");
                assert_eq!(serial.final_layout, parallel.final_layout);
                assert_eq!(serial.swap_count, parallel.swap_count);
            }
        }
    }

    #[test]
    fn measurements_are_mapped_to_physical_qubits() {
        let line = CouplingMap::linear(3);
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).measure(0).measure(1);
        let mut layout = Layout::trivial(3);
        layout.swap_physical(0, 2);
        let config = SabreConfig::default();
        let distances = line.distance_matrix();
        let mut rng = StdRng::seed_from_u64(0);
        let result = sabre_route(&qc, &line, &distances, &layout, &config, &mut rng);
        let measures: Vec<_> = result
            .circuit
            .iter()
            .filter(|i| i.gate == Gate::Measure)
            .map(|i| i.qubit(0))
            .collect();
        assert_eq!(measures.len(), 2);
        assert!(measures.contains(&2) || measures.contains(&1));
    }

    #[test]
    fn extended_set_respects_limit() {
        let mut qc = QuantumCircuit::new(6);
        for i in 0..5 {
            qc.cx(i, i + 1);
        }
        let dag = DagCircuit::from_circuit(&qc);
        let executed = vec![false; dag.num_nodes()];
        let mut scratch = ExtendedScratch::new(dag.num_nodes());
        let extended = collect_extended_set(&dag, &[0], &executed, 2, &mut scratch);
        assert!(extended.len() <= 2);
    }
}
