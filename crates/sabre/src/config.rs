//! Configuration shared by the SABRE layout and routing passes.

/// Tuning parameters of the SABRE heuristic.
///
/// The defaults follow the paper's experimental setup (§V): an extended
/// (lookahead) layer of 20 two-qubit gates weighted by 0.5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SabreConfig {
    /// Maximum number of two-qubit gates in the extended (lookahead) layer.
    pub extended_set_size: usize,
    /// Weight `W` of the extended layer in the heuristic cost.
    pub extended_set_weight: f64,
    /// Multiplicative decay applied to recently swapped qubits to discourage
    /// ping-ponging (SABRE's "decay effect").
    pub decay_delta: f64,
    /// Number of SWAP insertions after which decay values reset.
    pub decay_reset_interval: usize,
    /// Number of forward/backward traversal rounds used to refine the
    /// initial layout.
    pub layout_iterations: usize,
    /// Seed for the random initial layout and tie-breaking.
    pub seed: u64,
}

impl Default for SabreConfig {
    fn default() -> Self {
        Self {
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_delta: 0.001,
            decay_reset_interval: 5,
            layout_iterations: 3,
            seed: 2022,
        }
    }
}

impl SabreConfig {
    /// A config with the given seed and paper-default parameters.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SabreConfig::default();
        assert_eq!(c.extended_set_size, 20);
        assert!((c.extended_set_weight - 0.5).abs() < 1e-12);
        assert!(c.layout_iterations >= 1);
    }

    #[test]
    fn with_seed_overrides_only_seed() {
        let c = SabreConfig::with_seed(7);
        assert_eq!(c.seed, 7);
        assert_eq!(
            c.extended_set_size,
            SabreConfig::default().extended_set_size
        );
    }
}
