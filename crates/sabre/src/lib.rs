//! SABRE qubit layout and routing — the paper's baseline router.
//!
//! SABRE (Li, Ding, Xie — ASPLOS 2019) routes a logical circuit onto a
//! constrained device by repeatedly inserting the SWAP that minimises a
//! lookahead distance heuristic over the front and extended layers. This
//! crate provides:
//!
//! * [`sabre_layout`] — random initial layout refined by reverse traversal
//!   (the single-trial compatibility path),
//! * [`LayoutTrials`] — the multi-trial layout engine: N independently
//!   seeded trials refined through any [`SwapPolicy`], scored by a full
//!   routing pass, argmin kept with deterministic lowest-index tie-breaking,
//!   optionally fanned across a thread pool without affecting results,
//! * [`sabre_route`] — SWAP insertion with the plain SABRE heuristic,
//! * [`route_with_policy`] / [`SwapPolicy`] — the same traversal engine with
//!   a pluggable cost function, which is how the NASSC router reuses the
//!   machinery while replacing the scoring,
//! * [`RoutingState`] — the incremental output-circuit state (per-qubit
//!   touch index with O(1) push/pop and O(window) pair queries) the hot
//!   loop is built around,
//! * [`route_with_policy_on`] / [`route_prepared`] — the same routing pass
//!   with per-candidate SWAP scoring fanned across a thread pool
//!   (bit-identical to serial at any worker count) and with a prebuilt
//!   dependency DAG.
//!
//! # Example
//!
//! ```
//! use nassc_circuit::QuantumCircuit;
//! use nassc_sabre::{sabre_layout, sabre_route, SabreConfig};
//! use nassc_topology::CouplingMap;
//! use rand::SeedableRng;
//!
//! let mut qc = QuantumCircuit::new(3);
//! qc.cx(1, 2).cx(0, 1).cx(0, 2);
//! let device = CouplingMap::linear(3);
//! let distances = device.distance_matrix();
//! let config = SabreConfig::with_seed(7);
//! let layout = sabre_layout(&qc, &device, &distances, &config);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let routed = sabre_route(&qc, &device, &distances, &layout, &config, &mut rng);
//! assert!(routed.swap_count <= 2);
//! ```

pub mod config;
pub mod layout;
pub mod router;
pub mod state;

pub use config::SabreConfig;
pub use layout::{
    sabre_layout, sabre_layout_on, sabre_layout_prepared, sabre_layout_prepared_budgeted,
    select_best_trial, split_seed, LayoutSelection, LayoutTrials, TrialOutcome,
};
pub use router::{
    route_prepared, route_prepared_budgeted, route_with_policy, route_with_policy_on, sabre_route,
    RoutingContext, RoutingResult, SabrePolicy, StepEndpoints, SwapPolicy,
    PARALLEL_SCORE_THRESHOLD,
};
pub use state::RoutingState;
