//! Incremental routing state: the output circuit plus per-qubit touch
//! indices, kept in sync under push/pop.
//!
//! Both SABRE's traversal and NASSC's optimization-aware cost (Eq. 2) keep
//! asking the same question about the circuit emitted so far: *which recent
//! instructions touch this physical qubit pair?* Answering it by re-scanning
//! the whole output from the back — what `touching_window`/`trailing_block`
//! used to do — makes every candidate-SWAP score O(output), and the routing
//! pass as a whole quadratic in circuit size.
//!
//! [`RoutingState`] makes the question O(window): alongside the output
//! circuit it maintains, per physical qubit, the ascending list of output
//! indices whose instruction touches that qubit. A pair query then merges the
//! tails of two lists — at most `limit` steps — instead of scanning the
//! circuit. Updates are O(instruction arity): [`RoutingState::push`] appends
//! the new index to each touched qubit's list, [`RoutingState::pop`] removes
//! it again, so policies that detach trailing gates (NASSC's single-qubit
//! movement) keep the index exact without any rebuild.
//!
//! The lists hold *every* touching index, not just the last `W`: a capped
//! ring buffer could not survive [`RoutingState::pop`] (an entry evicted by a
//! push is unrecoverable once the push is popped back off), and the full
//! lists cost the same order of memory as the output circuit itself. Queries
//! stay O(window) either way because they walk the tails only.
//!
//! # Example
//!
//! ```
//! use nassc_circuit::{Gate, Instruction};
//! use nassc_sabre::RoutingState;
//!
//! let mut state = RoutingState::new(3);
//! state.push(Instruction::new(Gate::H, vec![0]));
//! state.push(Instruction::new(Gate::Cx, vec![0, 1]));
//! state.push(Instruction::new(Gate::Cx, vec![1, 2]));
//! let mut buf = [0u32; 4];
//! // Most-recent-first indices of instructions touching qubit 0 or 2.
//! let n = state.rev_touching_window(0, 2, &mut buf);
//! assert_eq!(&buf[..n], &[2, 1, 0]);
//! ```

use nassc_circuit::{Instruction, QuantumCircuit};

/// The router's output circuit plus the per-qubit index lists that make
/// windowed queries O(window) instead of O(circuit).
///
/// See the [module docs](self) for the design rationale. All mutation goes
/// through [`push`](Self::push)/[`pop`](Self::pop), which keep the circuit
/// and the lists consistent by construction; read access to the instructions
/// goes through [`circuit`](Self::circuit).
#[derive(Debug, Clone)]
pub struct RoutingState {
    circuit: QuantumCircuit,
    /// For each physical qubit, the ascending output indices touching it.
    touched: Vec<Vec<u32>>,
}

impl RoutingState {
    /// An empty state over `num_qubits` physical qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            circuit: QuantumCircuit::new(num_qubits),
            touched: vec![Vec::new(); num_qubits],
        }
    }

    /// Rebuilds the state from an existing circuit (used by tests and by
    /// callers that already hold a routed prefix).
    pub fn from_circuit(circuit: QuantumCircuit) -> Self {
        let mut state = Self::new(circuit.num_qubits());
        for inst in circuit.iter() {
            state.push(inst.clone());
        }
        state
    }

    /// The output circuit emitted so far.
    pub fn circuit(&self) -> &QuantumCircuit {
        &self.circuit
    }

    /// Number of instructions emitted so far.
    pub fn num_gates(&self) -> usize {
        self.circuit.num_gates()
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.circuit.num_qubits()
    }

    /// Consumes the state, returning the output circuit.
    pub fn into_circuit(self) -> QuantumCircuit {
        self.circuit
    }

    /// Appends an instruction, indexing it on every qubit it touches. O(arity).
    pub fn push(&mut self, instruction: Instruction) {
        let index = self.circuit.num_gates() as u32;
        for q in instruction.qubits().iter() {
            self.touched[q].push(index);
        }
        self.circuit.push(instruction);
    }

    /// Removes and returns the last instruction, un-indexing it. O(arity).
    pub fn pop(&mut self) -> Option<Instruction> {
        let instruction = self.circuit.pop()?;
        let index = self.circuit.num_gates() as u32;
        for q in instruction.qubits().iter() {
            let popped = self.touched[q].pop();
            debug_assert_eq!(popped, Some(index), "touch list out of sync on pop");
        }
        Some(instruction)
    }

    /// Fills `buf` with the output indices of the most recent instructions
    /// touching `p1` or `p2`, most-recent-first, stopping at `buf.len()`
    /// entries. Returns how many were written.
    ///
    /// This is the windowed replacement for scanning the whole output
    /// backwards: the per-qubit lists are ascending, so the query merges
    /// their tails in O(`buf.len()`), deduplicating instructions that touch
    /// both qubits. Equivalent to
    /// `circuit.iter().enumerate().rev().filter(touches p1 or p2).take(buf.len())`.
    pub fn rev_touching_window(&self, p1: usize, p2: usize, buf: &mut [u32]) -> usize {
        let a = &self.touched[p1];
        let b = &self.touched[p2];
        let (mut i, mut j) = (a.len(), b.len());
        let mut written = 0;
        while written < buf.len() {
            let next = match (i.checked_sub(1), j.checked_sub(1)) {
                (Some(ai), Some(bj)) => {
                    if a[ai] == b[bj] {
                        // One instruction touching both qubits: emit once.
                        i -= 1;
                        j -= 1;
                        a[ai]
                    } else if a[ai] > b[bj] {
                        i -= 1;
                        a[ai]
                    } else {
                        j -= 1;
                        b[bj]
                    }
                }
                (Some(ai), None) => {
                    i -= 1;
                    a[ai]
                }
                (None, Some(bj)) => {
                    j -= 1;
                    b[bj]
                }
                (None, None) => break,
            };
            buf[written] = next;
            written += 1;
        }
        written
    }

    /// The instruction at output index `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn instruction(&self, index: usize) -> &Instruction {
        &self.circuit.instructions()[index]
    }
}

impl PartialEq for RoutingState {
    fn eq(&self, other: &Self) -> bool {
        // The touch lists are derived data; the circuit is the identity.
        self.circuit == other.circuit && self.touched == other.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::Gate;

    /// Reference implementation: full backwards scan of the circuit.
    fn reference_window(circuit: &QuantumCircuit, p1: usize, p2: usize, limit: usize) -> Vec<u32> {
        circuit
            .iter()
            .enumerate()
            .rev()
            .filter(|(_, inst)| inst.acts_on(p1) || inst.acts_on(p2))
            .take(limit)
            .map(|(idx, _)| idx as u32)
            .collect()
    }

    fn sample_state() -> RoutingState {
        let mut state = RoutingState::new(4);
        state.push(Instruction::new(Gate::H, vec![0]));
        state.push(Instruction::new(Gate::Cx, vec![0, 1]));
        state.push(Instruction::new(Gate::Cx, vec![2, 3]));
        state.push(Instruction::new(Gate::Swap, vec![1, 2]));
        state.push(Instruction::new(Gate::T, vec![1]));
        state
    }

    #[test]
    fn windows_match_the_reference_scan() {
        let state = sample_state();
        let mut buf = [0u32; 8];
        for p1 in 0..4 {
            for p2 in 0..4 {
                if p1 == p2 {
                    continue;
                }
                for limit in 1..=5 {
                    let n = state.rev_touching_window(p1, p2, &mut buf[..limit]);
                    let expect = reference_window(state.circuit(), p1, p2, limit);
                    assert_eq!(&buf[..n], &expect[..], "({p1},{p2}) limit {limit}");
                }
            }
        }
    }

    #[test]
    fn push_pop_round_trips_and_keeps_the_index_exact() {
        let mut state = sample_state();
        let before = state.circuit().clone();
        let popped = state.pop().unwrap();
        assert_eq!(popped.gate, Gate::T);
        // The popped instruction no longer appears in any window.
        let mut buf = [0u32; 8];
        let n = state.rev_touching_window(1, 2, &mut buf);
        assert_eq!(&buf[..n], &[3, 2, 1]);
        // Re-pushing restores the exact previous state.
        state.push(popped);
        assert_eq!(state.circuit(), &before);
        assert_eq!(state, RoutingState::from_circuit(before));
    }

    #[test]
    fn from_circuit_matches_incremental_pushes() {
        let incremental = sample_state();
        let rebuilt = RoutingState::from_circuit(incremental.circuit().clone());
        assert_eq!(incremental, rebuilt);
    }

    #[test]
    fn window_deduplicates_pair_touching_instructions() {
        let mut state = RoutingState::new(2);
        state.push(Instruction::new(Gate::Cx, vec![0, 1]));
        state.push(Instruction::new(Gate::Cx, vec![1, 0]));
        let mut buf = [0u32; 4];
        let n = state.rev_touching_window(0, 1, &mut buf);
        assert_eq!(&buf[..n], &[1, 0]);
    }

    #[test]
    fn empty_state_yields_empty_windows() {
        let state = RoutingState::new(3);
        let mut buf = [0u32; 4];
        assert_eq!(state.rev_touching_window(0, 2, &mut buf), 0);
    }
}
