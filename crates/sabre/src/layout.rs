//! Initial-layout selection: SABRE's reverse-traversal refinement and the
//! multi-trial selection engine.
//!
//! Two entry points:
//!
//! * [`sabre_layout`] — the single-trial compatibility path: one random start
//!   refined with the plain SABRE heuristic through a single shared RNG,
//!   bit-identical to the historical implementation that lived in
//!   `router.rs`. This is what `layout_trials = 1` pipelines use.
//! * [`LayoutTrials`] — the multi-trial engine: `N` independent trials, each
//!   with its own [`split_seed`]-derived seed stream, refined through a
//!   *generic* [`SwapPolicy`] (so NASSC refines layouts with its
//!   optimization-aware cost, not just plain SABRE), scored by a full
//!   routing pass and reduced to the argmin with deterministic lowest-index
//!   tie-breaking. Trials fan out across a [`ThreadPool`]; because every
//!   trial owns its seed stream, results are bit-identical regardless of
//!   worker count or of how many sibling trials run.
//!
//! A circuit with no two-qubit gates needs no layout search at all: both
//! entry points return the identity layout (deterministic, and the cheapest
//! possible input for downstream `apply_layout`).

use rand::rngs::StdRng;
use rand::SeedableRng;

use nassc_circuit::{DagCircuit, QuantumCircuit};
use nassc_parallel::{Budget, ThreadPool};
use nassc_topology::{CouplingMap, DistanceMatrix, Layout};

use crate::config::SabreConfig;
use crate::router::{route_prepared_budgeted, RoutingResult, SabrePolicy, SwapPolicy};

/// Derives an independent child seed from `base` and a stream index.
///
/// SplitMix64-style finalizer over the combined words: statistically
/// independent streams for neighbouring indices, and child `i` of a given
/// base is the same value no matter how many siblings exist — the property
/// that makes trial results independent of the configured trial count and of
/// scheduling order.
pub fn split_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Chooses an initial layout with SABRE's random-start + reverse-traversal
/// refinement — the single-trial compatibility path.
///
/// One `StdRng` seeded from `config.seed` threads through the random start
/// and every refinement pass, reproducing the historical outputs exactly;
/// multi-trial pipelines use [`LayoutTrials`], whose per-trial seed streams
/// do not depend on call-ordering internals.
pub fn sabre_layout(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    config: &SabreConfig,
) -> Layout {
    sabre_layout_on(circuit, coupling, distances, config, &ThreadPool::new(1))
}

/// [`sabre_layout`] with an explicit pool for in-pass candidate scoring
/// (see [`crate::router::route_with_policy_on`]). The pool affects wall
/// clock only — outputs are bit-identical at any worker count.
pub fn sabre_layout_on(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    config: &SabreConfig,
    score_pool: &ThreadPool,
) -> Layout {
    if circuit.two_qubit_gate_count() == 0 {
        return Layout::trivial(coupling.num_qubits());
    }
    // The refinement rounds route the same two circuits over and over;
    // build each dependency DAG once instead of once per pass.
    let dag = DagCircuit::from_circuit(circuit);
    let reversed_dag = DagCircuit::from_circuit(&circuit.reversed());
    sabre_layout_prepared(&dag, &reversed_dag, coupling, distances, config, score_pool)
}

/// [`sabre_layout_on`] over prebuilt forward/reversed dependency DAGs.
///
/// The single-trial pipeline builds the DAG once per circuit and shares it
/// between the layout search and the production routing pass, instead of
/// rebuilding it per pass. Outputs are bit-identical to [`sabre_layout_on`]
/// for matching DAGs.
pub fn sabre_layout_prepared(
    dag: &DagCircuit,
    reversed_dag: &DagCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    config: &SabreConfig,
    score_pool: &ThreadPool,
) -> Layout {
    sabre_layout_prepared_budgeted(
        dag,
        reversed_dag,
        coupling,
        distances,
        config,
        score_pool,
        &Budget::unlimited(),
    )
}

/// [`sabre_layout_prepared`] under a cooperative [`Budget`], checked at the
/// start of the search and once per routing step of every refinement pass
/// (see [`route_prepared_budgeted`]). Outputs are unchanged whenever the
/// budget does not trip.
pub fn sabre_layout_prepared_budgeted(
    dag: &DagCircuit,
    reversed_dag: &DagCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    config: &SabreConfig,
    score_pool: &ThreadPool,
    budget: &Budget,
) -> Layout {
    budget.checkpoint();
    nassc_circuit::failpoints::hit("layout_trial");
    let _span = nassc_trace::span!("sabre_layout");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut layout = Layout::random(coupling.num_qubits(), &mut rng);
    for _ in 0..config.layout_iterations {
        let forward = route_prepared_budgeted(
            dag,
            coupling,
            distances,
            &layout,
            config,
            &mut SabrePolicy,
            &mut rng,
            score_pool,
            budget,
        );
        let backward = route_prepared_budgeted(
            reversed_dag,
            coupling,
            distances,
            &forward.final_layout,
            config,
            &mut SabrePolicy,
            &mut rng,
            score_pool,
            budget,
        );
        layout = backward.final_layout;
    }
    layout
}

/// The outcome of one layout trial: its seed and the cost of the full
/// routing pass that scored its refined layout.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Trial index (`0..trials`).
    pub trial: usize,
    /// The [`split_seed`]-derived seed this trial's refinement stream
    /// started from (the scoring pass itself runs on the production RNG).
    pub seed: u64,
    /// Cost of the scoring routing pass — SWAPs inserted under
    /// [`LayoutTrials::run`], or whatever the caller's cost function returns
    /// under [`LayoutTrials::run_scored`]. Lower is better.
    pub cost: f64,
}

/// The result of a [`LayoutTrials`] run: the winning layout plus the
/// per-trial diagnostics benchmark reports record.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutSelection {
    /// The layout of the winning trial.
    pub layout: Layout,
    /// Index of the winning trial (lowest index on cost ties).
    pub chosen_trial: usize,
    /// One outcome per trial, in trial order. Empty for the degenerate
    /// no-two-qubit-gate case, where no search runs.
    pub outcomes: Vec<TrialOutcome>,
}

impl LayoutSelection {
    /// The per-trial scoring costs, in trial order.
    pub fn trial_costs(&self) -> Vec<f64> {
        self.outcomes.iter().map(|outcome| outcome.cost).collect()
    }
}

/// Deterministic argmin over trial costs, tie-breaking by lowest index.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn select_best_trial(costs: &[f64]) -> usize {
    assert!(!costs.is_empty(), "no layout trials to select from");
    let mut best = 0;
    for (index, &cost) in costs.iter().enumerate().skip(1) {
        if cost < costs[best] {
            best = index;
        }
    }
    best
}

/// The multi-trial layout engine.
///
/// Runs `trials` independent layout searches and keeps the one whose refined
/// layout routes the circuit most cheaply. Refinement draws randomness from
/// a private per-trial seed stream — refinement stage `k` of trial `t` seeds
/// a fresh `StdRng` with `split_seed(split_seed(config.seed, t), k)` — so
/// the result is a pure function of `(inputs, config.seed, trial index)`:
/// independent of the worker count, of how many sibling trials run, and of
/// how many random draws any individual routing pass happens to consume.
///
/// The scoring pass deliberately does *not* use the trial stream: it routes
/// with a `StdRng` seeded directly from `config.seed` — exactly the RNG the
/// production routing pass uses — so each trial's cost is the cost the
/// pipeline will actually pay if that trial's layout wins, not a
/// differently-seeded estimate of it.
///
/// Refinement and scoring run through a caller-supplied [`SwapPolicy`]
/// factory, so optimization-aware routers refine layouts with their own cost
/// function instead of the plain SABRE heuristic.
///
/// # Example
///
/// ```
/// use nassc_circuit::QuantumCircuit;
/// use nassc_sabre::{LayoutTrials, SabreConfig, SabrePolicy};
/// use nassc_topology::CouplingMap;
///
/// let mut qc = QuantumCircuit::new(3);
/// qc.cx(1, 2).cx(0, 1).cx(0, 2);
/// let device = CouplingMap::linear(3);
/// let distances = device.distance_matrix();
/// let config = SabreConfig::with_seed(7);
/// let selection = LayoutTrials::new(&qc, &device, &distances, &config)
///     .trials(4)
///     .run(|| SabrePolicy);
/// assert_eq!(selection.outcomes.len(), 4);
/// assert!(selection.chosen_trial < 4);
/// ```
#[derive(Debug, Clone)]
pub struct LayoutTrials<'a> {
    circuit: &'a QuantumCircuit,
    coupling: &'a CouplingMap,
    distances: &'a DistanceMatrix,
    config: &'a SabreConfig,
    trials: usize,
    pool: ThreadPool,
    score_pool: ThreadPool,
    budget: Budget,
}

impl<'a> LayoutTrials<'a> {
    /// An engine over the given inputs, defaulting to one trial on a serial
    /// pool.
    pub fn new(
        circuit: &'a QuantumCircuit,
        coupling: &'a CouplingMap,
        distances: &'a DistanceMatrix,
        config: &'a SabreConfig,
    ) -> Self {
        Self {
            circuit,
            coupling,
            distances,
            config,
            trials: 1,
            pool: ThreadPool::new(1),
            score_pool: ThreadPool::new(1),
            budget: Budget::unlimited(),
        }
    }

    /// Sets the number of independent trials (clamped to at least 1).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Fans trials across `pool` (results never depend on its size).
    pub fn pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// Fans each routing pass's candidate scoring across `pool` (results
    /// never depend on its size). Callers with a fixed worker budget split
    /// it between trials and scoring via
    /// [`ThreadPool::split_budget`] so the two levels never oversubscribe.
    pub fn score_pool(mut self, pool: ThreadPool) -> Self {
        self.score_pool = pool;
        self
    }

    /// Runs the trials under a cooperative [`Budget`]: each trial checks it
    /// at trial start and once per routing step, aborting the whole search
    /// by unwinding with a typed [`Cancelled`] payload when it is
    /// exhausted. The budget's flag is shared, so once one trial trips,
    /// sibling trials on other workers abort at their own next checkpoint.
    ///
    /// [`Cancelled`]: nassc_parallel::Cancelled
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs every trial, scoring each by the SWAP count of its scoring pass,
    /// and returns the winning layout with per-trial diagnostics.
    /// `make_policy` builds a fresh [`SwapPolicy`] for each routing pass, so
    /// stateful policies never leak state across passes.
    pub fn run<P, F>(&self, make_policy: F) -> LayoutSelection
    where
        P: SwapPolicy + Send + Sync,
        F: Fn() -> P + Sync,
    {
        self.run_scored(make_policy, |routed, _| routed.swap_count as f64)
    }

    /// [`run`](Self::run) with a caller-supplied cost function.
    ///
    /// `score` receives each trial's scoring [`RoutingResult`] together with
    /// the policy that produced it, and returns the cost to minimise — e.g.
    /// an optimization-aware router can decompose the routed circuit's SWAPs
    /// with the policy's recorded orientations and count the CNOTs that
    /// actually survive, instead of pricing every SWAP equally.
    pub fn run_scored<P, F, S>(&self, make_policy: F, score: S) -> LayoutSelection
    where
        P: SwapPolicy + Send + Sync,
        F: Fn() -> P + Sync,
        S: Fn(&RoutingResult, &P) -> f64 + Sync,
    {
        self.run_routed(make_policy, score).0
    }

    /// [`run_scored`](Self::run_scored), additionally handing back the
    /// winning trial's scoring pass: its [`RoutingResult`] and the policy
    /// that produced it.
    ///
    /// Because the scoring pass routes on the production RNG
    /// (`config.seed`), that result is byte-identical to what re-routing the
    /// winning layout would produce — callers (the transpile pipeline) reuse
    /// it instead of paying a duplicate routing pass. `None` only in the
    /// degenerate no-two-qubit-gate case, where no routing runs.
    #[allow(clippy::type_complexity)]
    pub fn run_routed<P, F, S>(
        &self,
        make_policy: F,
        score: S,
    ) -> (LayoutSelection, Option<(RoutingResult, P)>)
    where
        P: SwapPolicy + Send + Sync,
        F: Fn() -> P + Sync,
        S: Fn(&RoutingResult, &P) -> f64 + Sync,
    {
        if self.circuit.two_qubit_gate_count() == 0 {
            let selection = LayoutSelection {
                layout: Layout::trivial(self.coupling.num_qubits()),
                chosen_trial: 0,
                outcomes: Vec::new(),
            };
            return (selection, None);
        }
        // Every trial routes the same two circuits; build each dependency
        // DAG once and share it across all trials and refinement rounds.
        let mut span = nassc_trace::span!("layout_trials");
        span.arg_u64("trials", self.trials as u64);
        let dag = DagCircuit::from_circuit(self.circuit);
        let reversed_dag = DagCircuit::from_circuit(&self.circuit.reversed());
        let candidates: Vec<(Layout, TrialOutcome, RoutingResult, P)> =
            self.pool.map((0..self.trials).collect(), |trial| {
                self.run_trial(trial, &dag, &reversed_dag, &make_policy, &score)
            });
        let costs: Vec<f64> = candidates
            .iter()
            .map(|(_, outcome, _, _)| outcome.cost)
            .collect();
        let chosen_trial = select_best_trial(&costs);
        span.arg_u64("chosen_trial", chosen_trial as u64);
        span.arg_f64("chosen_cost", costs[chosen_trial]);
        let mut outcomes = Vec::with_capacity(candidates.len());
        let mut winner = None;
        for (index, (trial_layout, outcome, routed, policy)) in candidates.into_iter().enumerate() {
            if index == chosen_trial {
                winner = Some((trial_layout, routed, policy));
            }
            outcomes.push(outcome);
        }
        let (layout, routed, policy) = winner.expect("chosen trial is in range");
        let selection = LayoutSelection {
            layout,
            chosen_trial,
            outcomes,
        };
        (selection, Some((routed, policy)))
    }

    /// One trial: random start, `layout_iterations` forward/backward
    /// refinement rounds (each stage on its own freshly seeded RNG from the
    /// trial's stream), then a scoring pass on the production RNG
    /// (`config.seed`), so the recorded cost is exactly what the pipeline's
    /// final routing pass will pay for this layout.
    fn run_trial<P, F, S>(
        &self,
        trial: usize,
        dag: &DagCircuit,
        reversed_dag: &DagCircuit,
        make_policy: &F,
        score: &S,
    ) -> (Layout, TrialOutcome, RoutingResult, P)
    where
        P: SwapPolicy + Sync,
        F: Fn() -> P + Sync,
        S: Fn(&RoutingResult, &P) -> f64 + Sync,
    {
        // A trial is the per-trial budget checkpoint: a deadline tripping
        // here unwinds with `Cancelled`, which the worker pool recognises
        // (not a fault) and the session boundary maps to a deadline error.
        self.budget.checkpoint();
        nassc_circuit::failpoints::hit("layout_trial");
        let trial_seed = split_seed(self.config.seed, trial as u64);
        let mut span = nassc_trace::span!("layout_trial");
        span.arg_u64("trial", trial as u64);
        span.arg_u64("seed", trial_seed);
        let mut stage = 0u64;
        let mut stage_rng = || {
            let rng = StdRng::seed_from_u64(split_seed(trial_seed, stage));
            stage += 1;
            rng
        };

        let mut layout = Layout::random(self.coupling.num_qubits(), &mut stage_rng());
        for _ in 0..self.config.layout_iterations {
            let forward = route_prepared_budgeted(
                dag,
                self.coupling,
                self.distances,
                &layout,
                self.config,
                &mut make_policy(),
                &mut stage_rng(),
                &self.score_pool,
                &self.budget,
            );
            let backward = route_prepared_budgeted(
                reversed_dag,
                self.coupling,
                self.distances,
                &forward.final_layout,
                self.config,
                &mut make_policy(),
                &mut stage_rng(),
                &self.score_pool,
                &self.budget,
            );
            layout = backward.final_layout;
        }
        let mut scoring_policy = make_policy();
        let scored = route_prepared_budgeted(
            dag,
            self.coupling,
            self.distances,
            &layout,
            self.config,
            &mut scoring_policy,
            &mut StdRng::seed_from_u64(self.config.seed),
            &self.score_pool,
            &self.budget,
        );
        let cost = score(&scored, &scoring_policy);
        span.arg_f64("cost", cost);
        let outcome = TrialOutcome {
            trial,
            seed: trial_seed,
            cost,
        };
        (layout, outcome, scored, scoring_policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::sabre_route;
    use nassc_passes::is_mapped;

    fn ring_circuit(n: usize, rounds: usize) -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(n);
        for _ in 0..rounds {
            for i in 0..n {
                qc.cx(i, (i + 1) % n);
            }
        }
        qc
    }

    fn assert_is_permutation(layout: &Layout, n: usize) {
        let mut seen = vec![false; n];
        for q in 0..n {
            seen[layout.physical_of(q)] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn sabre_layout_produces_valid_layout() {
        let montreal = CouplingMap::ibmq_montreal();
        let distances = montreal.distance_matrix();
        let mut qc = QuantumCircuit::new(5);
        qc.cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4).cx(0, 4);
        let layout = sabre_layout(&qc, &montreal, &distances, &SabreConfig::with_seed(9));
        assert_eq!(layout.len(), 27);
        assert_is_permutation(&layout, 27);
    }

    #[test]
    fn layout_refinement_reduces_swaps_compared_to_worst_case() {
        // A ring-structured circuit on the montreal map: a refined layout
        // should route with a reasonable number of SWAPs.
        let montreal = CouplingMap::ibmq_montreal();
        let distances = montreal.distance_matrix();
        let qc = ring_circuit(6, 3);
        let config = SabreConfig::with_seed(2);
        let layout = sabre_layout(&qc, &montreal, &distances, &config);
        let mut rng = StdRng::seed_from_u64(2);
        let routed = sabre_route(&qc, &montreal, &distances, &layout, &config, &mut rng);
        assert!(is_mapped(&routed.circuit, &montreal));
        // 18 CNOTs on a sensible layout should need well under 2 SWAPs per CNOT.
        assert!(
            routed.swap_count <= 27,
            "needed {} swaps",
            routed.swap_count
        );
    }

    #[test]
    fn split_seed_is_deterministic_and_spreads() {
        assert_eq!(split_seed(2022, 3), split_seed(2022, 3));
        let children: Vec<u64> = (0..32).map(|i| split_seed(2022, i)).collect();
        let mut unique = children.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), children.len(), "child seeds collide");
        assert_ne!(split_seed(2022, 0), split_seed(2023, 0));
    }

    #[test]
    fn select_best_trial_tie_breaks_by_lowest_index() {
        assert_eq!(select_best_trial(&[3.0, 2.0, 2.0, 5.0]), 1);
        assert_eq!(select_best_trial(&[4.0, 4.0, 4.0]), 0);
        assert_eq!(select_best_trial(&[9.0]), 0);
        assert_eq!(select_best_trial(&[5.0, 1.0, 0.5, 0.5]), 2);
    }

    #[test]
    #[should_panic(expected = "no layout trials")]
    fn select_best_trial_rejects_empty_input() {
        select_best_trial(&[]);
    }

    #[test]
    fn degenerate_circuits_get_the_identity_layout() {
        let device = CouplingMap::linear(5);
        let distances = device.distance_matrix();
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).h(1).h(2);
        let config = SabreConfig::with_seed(4);
        assert_eq!(
            sabre_layout(&qc, &device, &distances, &config),
            Layout::trivial(5)
        );
        let selection = LayoutTrials::new(&qc, &device, &distances, &config)
            .trials(4)
            .run(|| SabrePolicy);
        assert_eq!(selection.layout, Layout::trivial(5));
        assert_eq!(selection.chosen_trial, 0);
        assert!(selection.outcomes.is_empty());
    }

    #[test]
    fn trial_results_are_independent_of_worker_count_and_trial_count() {
        let device = CouplingMap::grid(2, 3);
        let distances = device.distance_matrix();
        let qc = ring_circuit(5, 2);
        let config = SabreConfig::with_seed(11);
        let engine = LayoutTrials::new(&qc, &device, &distances, &config);

        let serial = engine.clone().trials(4).run(|| SabrePolicy);
        for workers in [2, 8] {
            let parallel = engine
                .clone()
                .trials(4)
                .pool(ThreadPool::new(workers))
                .run(|| SabrePolicy);
            assert_eq!(serial, parallel, "{workers} workers");
        }
        // Trial 0..4 of an 8-trial run are the same trials: outcomes are a
        // pure function of (inputs, seed, trial index).
        let wider = engine.clone().trials(8).run(|| SabrePolicy);
        assert_eq!(&wider.outcomes[..4], &serial.outcomes[..]);
    }

    #[test]
    fn selection_wins_by_cost_and_layout_is_valid() {
        let device = CouplingMap::ibmq_montreal();
        let distances = device.distance_matrix();
        let qc = ring_circuit(6, 3);
        let config = SabreConfig::with_seed(2);
        let selection = LayoutTrials::new(&qc, &device, &distances, &config)
            .trials(5)
            .run(|| SabrePolicy);
        assert_eq!(selection.outcomes.len(), 5);
        assert_is_permutation(&selection.layout, 27);
        let best = selection.outcomes[selection.chosen_trial].cost;
        assert!(selection.outcomes.iter().all(|o| o.cost >= best));
        // The winner is the first trial achieving the minimum.
        let first_min = selection
            .outcomes
            .iter()
            .position(|o| o.cost == best)
            .unwrap();
        assert_eq!(selection.chosen_trial, first_min);
    }

    #[test]
    fn exhausted_budget_aborts_the_search_with_a_cancelled_payload() {
        let device = CouplingMap::ibmq_montreal();
        let distances = device.distance_matrix();
        let qc = ring_circuit(6, 3);
        let config = SabreConfig::with_seed(2);
        let budget = Budget::unlimited();
        budget.cancel();
        let engine = LayoutTrials::new(&qc, &device, &distances, &config)
            .trials(3)
            .budget(budget);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(|| SabrePolicy)));
        let payload = caught.expect_err("cancelled budget must abort the search");
        assert!(
            nassc_parallel::Cancelled::from_payload(payload.as_ref()),
            "abort must carry the typed Cancelled payload"
        );
    }

    #[test]
    fn generous_budget_leaves_results_bit_identical() {
        let device = CouplingMap::grid(2, 3);
        let distances = device.distance_matrix();
        let qc = ring_circuit(5, 2);
        let config = SabreConfig::with_seed(11);
        let engine = LayoutTrials::new(&qc, &device, &distances, &config).trials(4);
        let unbudgeted = engine.clone().run(|| SabrePolicy);
        let budgeted = engine
            .clone()
            .budget(Budget::with_timeout(std::time::Duration::from_secs(3600)))
            .run(|| SabrePolicy);
        assert_eq!(unbudgeted, budgeted);
    }

    #[test]
    fn more_trials_never_worsen_the_scoring_cost() {
        let device = CouplingMap::ibmq_montreal();
        let distances = device.distance_matrix();
        let qc = ring_circuit(6, 3);
        let config = SabreConfig::with_seed(13);
        let engine = LayoutTrials::new(&qc, &device, &distances, &config);
        let one = engine.clone().trials(1).run(|| SabrePolicy);
        let four = engine.clone().trials(4).run(|| SabrePolicy);
        assert!(
            four.outcomes[four.chosen_trial].cost <= one.outcomes[0].cost,
            "4 trials scored worse than trial 0 alone"
        );
    }
}
