//! Umbrella crate: integration tests and examples for the NASSC reproduction.
pub use nassc;
