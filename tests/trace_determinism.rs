//! The tracing contract over the real pipeline: recording is observational
//! only. Traced and untraced transpiles are bit-identical at every worker
//! count, disabled-mode sites record nothing, and an enabled recording
//! window captures the documented span taxonomy (per-pass spans, layout
//! trials, routing counters, cache events).
//!
//! The recorder is process-wide, so every test in this binary serializes
//! on one mutex.

use std::sync::{Mutex, MutexGuard, PoisonError};

use nassc::circuit::QuantumCircuit;
use nassc::{RouterKind, ThreadPool, TranspileOptions, TranspileResult, Transpiler};
use nassc_topology::CouplingMap;

fn recorder_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn sample_circuit() -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(6);
    qc.h(0);
    for i in 0..5 {
        qc.cx(i, i + 1);
    }
    qc.cx(0, 5).cx(1, 4).cx(2, 5).cx(0, 3);
    qc
}

fn options_for(router: RouterKind, trials: usize) -> TranspileOptions {
    TranspileOptions::new()
        .router(router)
        .seed(7)
        .layout_trials(trials)
}

fn assert_same_result(left: &TranspileResult, right: &TranspileResult, context: &str) {
    assert_eq!(left.circuit, right.circuit, "{context}: circuit");
    assert_eq!(
        left.initial_layout, right.initial_layout,
        "{context}: initial layout"
    );
    assert_eq!(
        left.final_layout, right.final_layout,
        "{context}: final layout"
    );
    assert_eq!(left.swap_count, right.swap_count, "{context}: swap count");
    assert_eq!(
        left.chosen_layout_trial, right.chosen_layout_trial,
        "{context}: chosen trial"
    );
    assert_eq!(
        left.layout_trial_costs, right.layout_trial_costs,
        "{context}: trial costs"
    );
}

#[test]
fn traced_transpile_is_bit_identical_to_untraced() {
    let _guard = recorder_guard();
    let circuit = sample_circuit();
    let device = CouplingMap::grid(2, 3);
    for router in [RouterKind::Sabre, RouterKind::Nassc] {
        for trials in [1, 4] {
            for workers in [1, 8] {
                let options = options_for(router, trials);
                let context = format!("{router:?} trials={trials} workers={workers}");

                nassc::trace::disable();
                let untraced = Transpiler::new(device.clone(), options.clone())
                    .with_pool(ThreadPool::new(workers))
                    .transpile(&circuit)
                    .expect("untraced transpile");

                nassc::trace::enable();
                let traced = Transpiler::new(device.clone(), options.clone())
                    .with_pool(ThreadPool::new(workers))
                    .transpile(&circuit)
                    .expect("traced transpile");
                let report = nassc::trace::take_report();
                nassc::trace::disable();

                assert_same_result(&traced, &untraced, &context);
                assert!(
                    !report.events.is_empty(),
                    "{context}: tracing was enabled, events must exist"
                );
            }
        }
    }
}

#[test]
fn disabled_recorder_stays_empty_through_a_transpile() {
    let _guard = recorder_guard();
    nassc::trace::disable();
    let _ = nassc::trace::take_report();
    Transpiler::new(CouplingMap::grid(2, 3), options_for(RouterKind::Nassc, 3))
        .transpile(&sample_circuit())
        .expect("transpile");
    let report = nassc::trace::take_report();
    assert!(
        report.events.is_empty(),
        "disabled mode must record nothing, got {} events",
        report.events.len()
    );
    assert_eq!(report.events_dropped, 0);
}

#[test]
fn enabled_recorder_captures_the_span_taxonomy() {
    let _guard = recorder_guard();
    let circuit = sample_circuit();
    let session = Transpiler::new(CouplingMap::grid(2, 3), options_for(RouterKind::Nassc, 4));

    nassc::trace::enable();
    session.transpile(&circuit).expect("cold transpile");
    session.transpile(&circuit).expect("warm transpile");
    let report = nassc::trace::take_report();
    nassc::trace::disable();

    // Session phases: one resolve/commit pair per request, one job each.
    assert_eq!(report.span_count("resolve"), 2);
    assert_eq!(report.span_count("commit"), 2);
    assert_eq!(report.span_count("job"), 2);
    // Cold request: preparation, 4 layout trials, decompose, post-optimize.
    assert_eq!(report.span_count("prepare"), 1);
    assert_eq!(report.span_count("layout_trials"), 1);
    assert_eq!(report.span_count("layout_trial"), 4);
    assert_eq!(report.span_count("decompose"), 1);
    assert_eq!(report.span_count("post_optimize"), 2, "cold + warm");
    // Warm request replays one routing pass from the cached layout.
    assert_eq!(report.span_count("route_from"), 1);
    // Routing stepped at least once and scored SWAP candidates.
    assert!(report.counter_total("route.steps") > 0);
    assert!(report.counter_total("route.swap_candidates") > 0);
    // Cache events: cold misses everything, warm hits everything.
    assert_eq!(report.counter_total("cache.distance_hit"), 1);
    assert_eq!(report.counter_total("cache.distance_miss"), 1);
    assert_eq!(report.counter_total("cache.prepared_hit"), 1);
    assert_eq!(report.counter_total("cache.prepared_miss"), 1);
    assert_eq!(report.counter_total("cache.layout_hit"), 1);
    assert_eq!(report.counter_total("cache.layout_miss"), 1);
    // Every pass executed under a span carrying its own name.
    assert!(
        report.spans().any(|span| span.name == "unroll-to-basis"),
        "per-pass spans must use the pass name"
    );
    // The trial annotations recorded the winner.
    let trials_span = report
        .spans()
        .find(|span| span.name == "layout_trials")
        .expect("layout_trials span");
    assert!(trials_span
        .args
        .iter()
        .any(|(key, _)| key == "chosen_trial"));
    assert!(trials_span.args.iter().any(|(key, _)| key == "chosen_cost"));
    // Chrome export round-trips the taxonomy.
    let chrome = report.to_chrome_json();
    for name in ["resolve", "layout_trial", "route_from", "post_optimize"] {
        assert!(chrome.contains(&format!("\"name\":\"{name}\"")), "{name}");
    }
}
