//! The incremental-routing-state contract: the windowed per-qubit touch
//! index and the delta-style (cached-endpoint, zero-clone) scoring helpers
//! agree *exactly* — same booleans, same floats — with the full-recompute
//! reference implementations, on random circuits, random push/pop
//! histories and every qubit pair.

use proptest::prelude::*;

use nassc::circuit::{DagCircuit, Gate, Instruction, QuantumCircuit};
use nassc::sabre::{RoutingContext, RoutingState, SabreConfig, StepEndpoints};
use nassc::{evaluate_swap_reduction, evaluate_swap_reduction_windowed, OptimizationFlags};
use nassc_topology::{CouplingMap, Layout};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WIDTH: usize = 5;

/// Decodes simple proptest primitives into a physical-circuit instruction
/// stream (the gate mix routing actually emits: 1q unitaries, CNOTs, SWAPs
/// and measurements) plus "pop" events exercising the un-index path.
fn build_state(ops: &[(u8, usize, usize, f64)]) -> RoutingState {
    let mut state = RoutingState::new(WIDTH);
    for &(kind, a, b, angle) in ops {
        let a = a % WIDTH;
        let b = b % WIDTH;
        match kind % 8 {
            0 => state.push(Instruction::new(Gate::Rz(angle), vec![a])),
            1 => state.push(Instruction::new(Gate::Sx, vec![a])),
            2 => state.push(Instruction::new(Gate::U(angle, 0.2, 0.7), vec![a])),
            3 => state.push(Instruction::new(Gate::Measure, vec![a])),
            4 | 5 => {
                if a != b {
                    state.push(Instruction::new(Gate::Cx, vec![a, b]));
                }
            }
            6 => {
                if a != b {
                    state.push(Instruction::new(Gate::Swap, vec![a, b]));
                }
            }
            _ => {
                state.pop();
            }
        }
    }
    state
}

/// The reference window: a full backwards scan of the output circuit.
fn reference_window(circuit: &QuantumCircuit, p1: usize, p2: usize, limit: usize) -> Vec<u32> {
    circuit
        .iter()
        .enumerate()
        .rev()
        .filter(|(_, inst)| inst.acts_on(p1) || inst.acts_on(p2))
        .take(limit)
        .map(|(idx, _)| idx as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `RoutingState::rev_touching_window` equals the full backwards scan
    /// for every pair and several window limits, after arbitrary push/pop
    /// histories.
    #[test]
    fn touch_windows_match_full_scans(
        ops in proptest::collection::vec((any::<u8>(), 0usize..WIDTH, 0usize..WIDTH, -3.0f64..3.0), 0..60),
    ) {
        let state = build_state(&ops);
        let rebuilt = RoutingState::from_circuit(state.circuit().clone());
        prop_assert_eq!(&state, &rebuilt, "push/pop history desynced the index");
        let mut buf = [0u32; 32];
        for p1 in 0..WIDTH {
            for p2 in 0..WIDTH {
                if p1 == p2 {
                    continue;
                }
                for limit in [1usize, 3, 20, 32] {
                    let n = state.rev_touching_window(p1, p2, &mut buf[..limit]);
                    let expect = reference_window(state.circuit(), p1, p2, limit);
                    prop_assert_eq!(&buf[..n], &expect[..], "pair ({}, {}) limit {}", p1, p2, limit);
                }
            }
        }
    }

    /// The windowed Eq. 2 reduction terms equal the full-recompute reference
    /// — gains, orientations and sandwich partners — for every pair and
    /// every flag combination.
    #[test]
    fn windowed_swap_reductions_match_reference(
        ops in proptest::collection::vec((any::<u8>(), 0usize..WIDTH, 0usize..WIDTH, -3.0f64..3.0), 0..50),
    ) {
        let state = build_state(&ops);
        for flags in OptimizationFlags::all_combinations() {
            for p1 in 0..WIDTH {
                for p2 in 0..WIDTH {
                    if p1 == p2 {
                        continue;
                    }
                    let fast = evaluate_swap_reduction_windowed(&state, p1, p2, &flags);
                    let reference = evaluate_swap_reduction(state.circuit(), p1, p2, &flags);
                    prop_assert_eq!(
                        fast, reference,
                        "pair ({}, {}) flags {}", p1, p2, flags.label()
                    );
                }
            }
        }
    }

    /// The zero-clone after-swap distances equal (bitwise) the reference
    /// clone-the-layout-and-resum path, for every candidate pair.
    #[test]
    fn after_swap_distances_match_layout_clones(
        ops in proptest::collection::vec((4u8..6, 0usize..WIDTH, 0usize..WIDTH, 0.0f64..1.0), 1..25),
        layout_seed in 0u64..1000,
    ) {
        // A logical circuit of CNOTs; its 2q nodes provide front/extended layers.
        let mut qc = QuantumCircuit::new(WIDTH);
        for &(_, a, b, _) in &ops {
            let (a, b) = (a % WIDTH, b % WIDTH);
            if a != b {
                qc.cx(a, b);
            }
        }
        if qc.is_empty() {
            qc.cx(0, 1); // every case needs at least one 2q node
        }
        let dag = DagCircuit::from_circuit(&qc);
        let nodes: Vec<usize> = (0..dag.num_nodes()).collect();
        let (front, extended) = nodes.split_at(nodes.len().div_ceil(2));

        let device = CouplingMap::linear(WIDTH);
        let distances = device.distance_matrix();
        let layout = Layout::random(WIDTH, &mut StdRng::seed_from_u64(layout_seed));
        let config = SabreConfig::default();
        let state = RoutingState::new(WIDTH);
        let mut endpoints = StepEndpoints::new();
        endpoints.prepare(&dag, front, extended, &layout);
        let ctx = RoutingContext::new(
            &device, &distances, &layout, front, extended, &dag, &state, &config, &endpoints,
        );
        for p1 in 0..WIDTH {
            for p2 in 0..WIDTH {
                if p1 == p2 {
                    continue;
                }
                let trial = ctx.layout_after_swap(p1, p2);
                // Bitwise equality: same gates, same summation order.
                prop_assert_eq!(
                    ctx.front_distance_after_swap(p1, p2).to_bits(),
                    ctx.front_distance(&trial).to_bits()
                );
                prop_assert_eq!(
                    ctx.extended_distance_after_swap(p1, p2).to_bits(),
                    ctx.extended_distance(&trial).to_bits()
                );
            }
        }
    }
}
