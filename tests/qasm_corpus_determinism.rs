//! The external-workload corpus contract: every committed `benchmarks/qasm/`
//! file parses, transpiles bit-identically across `NASSC_THREADS` ∈ {1, 8}
//! under both routers, and re-exports as parseable OpenQASM 2.0.
//!
//! This binary's only test sweeps `NASSC_THREADS`, so the env mutation
//! cannot race a concurrent reader (the same isolation pattern as
//! `layout_trials_determinism.rs`).

// This file deliberately exercises the deprecated pre-session free
// functions: it pins the legacy entry points' behavior (the contract the
// `Transpiler` session must keep matching) until the shims are removed.
// New coverage belongs in `transpiler_session_determinism.rs`.
#![allow(deprecated)]

use std::path::PathBuf;

use nassc::qasm;
use nassc::{transpile, RouterKind, TranspileOptions};
use nassc_topology::CouplingMap;

/// The committed corpus directory, resolved relative to the workspace root.
fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benchmarks/qasm")
}

#[test]
fn corpus_transpiles_bit_identically_and_reexports() {
    let corpus = qasm::load_corpus(&corpus_dir()).expect("corpus directory must be readable");
    assert!(
        corpus.len() >= 10,
        "committed corpus shrank to {} files",
        corpus.len()
    );
    let device = CouplingMap::ibmq_montreal();
    for file in &corpus {
        let circuit = file
            .circuit
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: {e}", file.path.display()));
        assert!(
            circuit.num_qubits() <= device.num_qubits(),
            "{}: too wide for ibmq_montreal",
            file.name
        );
        // The committed sources contain only named gates, so the corpus
        // itself must round-trip: export(parse(file)) parses back identical.
        let reexported =
            qasm::export(circuit).unwrap_or_else(|e| panic!("{}: export failed: {e}", file.name));
        assert_eq!(
            &qasm::parse(&reexported).unwrap(),
            circuit,
            "{}: corpus round trip",
            file.name
        );

        for router in [RouterKind::Sabre, RouterKind::Nassc] {
            for trials in [1usize, 2] {
                let options = match router {
                    RouterKind::Sabre => TranspileOptions::sabre(7),
                    RouterKind::Nassc => TranspileOptions::nassc(7),
                }
                .with_layout_trials(trials);
                let mut reference = None;
                for threads in ["1", "8"] {
                    std::env::set_var("NASSC_THREADS", threads);
                    let result = transpile(circuit, &device, &options)
                        .unwrap_or_else(|e| panic!("{} ({router:?}): {e}", file.name));
                    match &reference {
                        None => {
                            // Transpiled output must re-export as parseable
                            // QASM that round-trips structurally.
                            let out = qasm::export(&result.circuit).unwrap_or_else(|e| {
                                panic!("{} ({router:?}): export failed: {e}", file.name)
                            });
                            assert_eq!(
                                qasm::parse(&out).unwrap(),
                                result.circuit,
                                "{} ({router:?}): transpiled round trip",
                                file.name
                            );
                            reference = Some(result);
                        }
                        Some(reference) => {
                            assert_eq!(
                                reference.circuit, result.circuit,
                                "{} ({router:?}, {trials} trials): \
                                 output differs at NASSC_THREADS={threads}",
                                file.name
                            );
                            assert_eq!(
                                reference.initial_layout, result.initial_layout,
                                "{} ({router:?}): initial layout",
                                file.name
                            );
                            assert_eq!(
                                reference.swap_count, result.swap_count,
                                "{} ({router:?}): swap count",
                                file.name
                            );
                        }
                    }
                }
            }
        }
    }
    std::env::remove_var("NASSC_THREADS");
}
