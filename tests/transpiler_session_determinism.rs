//! The [`Transpiler`] session determinism contract: a warm session (every
//! cache populated) returns results bit-identical to the cold legacy
//! free-function path, for both routers, at a 1-worker and an 8-worker
//! budget — only `elapsed` and `cache` may differ. Plus the cache-counter
//! arithmetic the contract's observability rests on.

use nassc::circuit::QuantumCircuit;
use nassc::{
    CacheStats, Error, RouterKind, SessionJob, ThreadPool, TranspileOptions, TranspileResult,
    Transpiler,
};
use nassc_topology::CouplingMap;

fn sample_circuit() -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(6);
    qc.h(0);
    for i in 0..5 {
        qc.cx(i, i + 1);
    }
    qc.cx(0, 5).cx(1, 4).cx(2, 5).cx(0, 3);
    qc
}

fn options_for(router: RouterKind, trials: usize) -> TranspileOptions {
    TranspileOptions::new()
        .router(router)
        .seed(7)
        .layout_trials(trials)
}

/// Everything two equal transpiles must share (`elapsed` and `cache` are
/// legitimately run-dependent).
fn assert_same_result(left: &TranspileResult, right: &TranspileResult, context: &str) {
    assert_eq!(left.circuit, right.circuit, "{context}: circuit");
    assert_eq!(
        left.initial_layout, right.initial_layout,
        "{context}: initial layout"
    );
    assert_eq!(
        left.final_layout, right.final_layout,
        "{context}: final layout"
    );
    assert_eq!(left.swap_count, right.swap_count, "{context}: swap count");
    assert_eq!(
        left.chosen_layout_trial, right.chosen_layout_trial,
        "{context}: chosen trial"
    );
    assert_eq!(
        left.layout_trial_costs, right.layout_trial_costs,
        "{context}: trial costs"
    );
}

#[test]
fn warm_session_matches_the_cold_free_function_path() {
    // The free functions are the pre-session reference implementation this
    // test deliberately pins against the session.
    #[allow(deprecated)]
    use nassc::transpile;

    let circuit = sample_circuit();
    let device = CouplingMap::grid(2, 3);
    for router in [RouterKind::Sabre, RouterKind::Nassc] {
        for trials in [1, 3] {
            let options = options_for(router, trials);
            #[allow(deprecated)]
            let reference = transpile(&circuit, &device, &options).expect("reference");
            for workers in [1, 8] {
                let session = Transpiler::new(device.clone(), options.clone())
                    .with_pool(ThreadPool::new(workers));
                let cold = session.transpile(&circuit).expect("cold");
                let warm = session.transpile(&circuit).expect("warm");
                let context = format!("{router:?} trials={trials} workers={workers}");
                assert_same_result(&cold, &reference, &format!("cold vs reference, {context}"));
                assert_same_result(&warm, &reference, &format!("warm vs reference, {context}"));
                // The second request was served entirely from the caches.
                assert_eq!(warm.cache.hits(), 3, "{context}: warm hits");
                assert_eq!(warm.cache.misses(), 0, "{context}: warm misses");
            }
        }
    }
}

#[test]
fn batch_through_a_warm_session_matches_its_serial_replay() {
    let circuit = sample_circuit();
    let device = CouplingMap::linear(6);
    let jobs: Vec<TranspileOptions> = (0..3)
        .flat_map(|seed| {
            [
                options_for(RouterKind::Sabre, 1).seed(seed),
                options_for(RouterKind::Nassc, 2).seed(seed),
            ]
        })
        .collect();

    // Serial 1-worker reference, one request at a time on a fresh session.
    let reference = Transpiler::new(device.clone(), options_for(RouterKind::Nassc, 1))
        .with_pool(ThreadPool::new(1));
    let expected: Vec<TranspileResult> = jobs
        .iter()
        .map(|options| {
            reference
                .transpile_with(&circuit, options)
                .expect("reference")
        })
        .collect();

    for workers in [1, 8] {
        let session = Transpiler::new(device.clone(), options_for(RouterKind::Nassc, 1))
            .with_pool(ThreadPool::new(workers));
        let batch: Vec<SessionJob<'_>> = jobs
            .iter()
            .map(|options| SessionJob::with_options(&circuit, options.clone()))
            .collect();
        // Twice through the same session: cold fan-out, then fully warm.
        for temperature in ["cold", "warm"] {
            let results = session.transpile_jobs(&batch);
            assert_eq!(results.len(), expected.len());
            for (index, (result, expected)) in results.iter().zip(&expected).enumerate() {
                let result = result.as_ref().expect("batch transpile");
                let context = format!("workers={workers} {temperature} job {index}");
                assert_same_result(result, expected, &context);
            }
        }
    }
}

#[test]
fn cache_counters_track_hits_and_misses_request_by_request() {
    let circuit = sample_circuit();
    let mut other = sample_circuit();
    other.cx(3, 4); // structurally distinct: its own prepared/layout entries
    let session = Transpiler::new(CouplingMap::linear(6), options_for(RouterKind::Nassc, 1));

    let first = session.transpile(&circuit).expect("first");
    assert_eq!(
        first.cache,
        CacheStats {
            distance_misses: 1,
            prepared_misses: 1,
            layout_misses: 1,
            ..CacheStats::default()
        }
    );

    // Same circuit, same options: every cache hits.
    let second = session.transpile(&circuit).expect("second");
    assert_eq!(
        second.cache,
        CacheStats {
            distance_hits: 1,
            prepared_hits: 1,
            layout_hits: 1,
            ..CacheStats::default()
        }
    );

    // Same circuit, different seed: the layout winner no longer applies,
    // but distances and the prepared baseline still hit.
    let reseeded = session
        .transpile_with(&circuit, &options_for(RouterKind::Nassc, 1).seed(99))
        .expect("reseeded");
    assert_eq!(
        reseeded.cache,
        CacheStats {
            distance_hits: 1,
            prepared_hits: 1,
            layout_misses: 1,
            ..CacheStats::default()
        }
    );

    // A structurally different circuit misses everything but distances.
    let distinct = session.transpile(&other).expect("distinct");
    assert_eq!(
        distinct.cache,
        CacheStats {
            distance_hits: 1,
            prepared_misses: 1,
            layout_misses: 1,
            ..CacheStats::default()
        }
    );

    // Session totals are the sum of the per-request counters.
    let mut expected_total = CacheStats::default();
    for stats in [
        &first.cache,
        &second.cache,
        &reseeded.cache,
        &distinct.cache,
    ] {
        expected_total.accumulate(stats);
    }
    assert_eq!(session.cache_stats(), expected_total);
}

#[test]
fn duplicate_cold_jobs_in_one_batch_stay_deterministic() {
    // Two identical jobs in one cold batch: resolution is serial, so both
    // miss the layout cache (the winner is only committed after the batch),
    // but they must still return identical results and the second request
    // after the batch must hit.
    let circuit = sample_circuit();
    let session = Transpiler::new(CouplingMap::linear(6), options_for(RouterKind::Nassc, 1));
    let jobs = [SessionJob::new(&circuit), SessionJob::new(&circuit)];
    let results = session.transpile_jobs(&jobs);
    let first = results[0].as_ref().expect("first");
    let second = results[1].as_ref().expect("second");
    assert_same_result(first, second, "duplicate cold jobs");
    assert_eq!(first.cache.layout_misses, 1);
    assert_eq!(second.cache.layout_misses, 1);
    assert_eq!(
        second.cache.prepared_hits, 1,
        "prepared cache fills in-batch"
    );

    let after = session.transpile(&circuit).expect("after");
    assert_same_result(first, &after, "post-batch request");
    assert_eq!(after.cache.hits(), 3);
}

#[test]
fn transpile_qasm_folds_both_failure_domains_into_one_error() {
    let session = Transpiler::new(CouplingMap::linear(3), TranspileOptions::new().seed(1));
    let result = session
        .transpile_qasm(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncx q[0], q[2];\ncx q[0], q[1];\n",
        )
        .expect("valid program");
    assert!(result.cx_count() >= 2);

    let err = session
        .transpile_qasm("OPENQASM 2.0;\nqreg q[;\n")
        .expect_err("syntax error");
    assert!(matches!(err, Error::Qasm(_)));
    assert!(err.to_string().to_lowercase().contains("qasm") || !err.to_string().is_empty());
}
