//! Cross-crate integration tests: full transpile pipelines preserve circuit
//! semantics, respect the coupling map, and NASSC never loses to SABRE on
//! CNOT overhead by more than seed noise.

// This file deliberately exercises the deprecated pre-session free
// functions: it pins the legacy entry points' behavior (the contract the
// `Transpiler` session must keep matching) until the shims are removed.
// New coverage belongs in `transpiler_session_determinism.rs`.
#![allow(deprecated)]

use nassc::{optimize_without_routing, transpile, OptimizationFlags, TranspileOptions};
use nassc_benchmarks::{adder, bernstein_vazirani, grover, qft, qpe, vqe};
use nassc_circuit::{circuit_unitary, QuantumCircuit};
use nassc_passes::is_mapped;
use nassc_topology::CouplingMap;

/// Checks that a routed+optimized physical circuit implements the same
/// statistics as the logical circuit: because the final layout permutes the
/// wires, we compare the *sorted multiset* of output-distribution
/// probabilities, which is permutation-invariant and catches real
/// miscompilations.
fn assert_same_output_distribution(logical: &QuantumCircuit, physical: &QuantumCircuit) {
    let strip = |qc: &QuantumCircuit| {
        let mut out = QuantumCircuit::new(qc.num_qubits());
        for inst in qc.iter() {
            if inst.gate.is_unitary() {
                out.push(inst.clone());
            }
        }
        out
    };
    let compact = |qc: &QuantumCircuit| {
        let active = qc.active_qubits();
        let stripped = strip(qc);
        stripped.map_qubits(active.len(), |q| active.binary_search(&q).expect("active"))
    };
    let logical_c = compact(logical);
    let physical_c = compact(physical);
    assert!(physical_c.num_qubits() >= logical_c.num_qubits());

    let probabilities = |qc: &QuantumCircuit| {
        let u = circuit_unitary(qc);
        let mut probs: Vec<f64> = (0..u.dim()).map(|row| u.get(row, 0).norm_sqr()).collect();
        probs.retain(|p| *p > 1e-9);
        probs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        probs
    };
    let expected = probabilities(&logical_c);
    let actual = probabilities(&physical_c);
    assert_eq!(
        expected.len(),
        actual.len(),
        "different number of output branches"
    );
    for (e, a) in expected.iter().zip(actual.iter()) {
        assert!((e - a).abs() < 1e-6, "probability mismatch: {e} vs {a}");
    }
}

#[test]
fn sabre_and_nassc_preserve_semantics_on_small_benchmarks() {
    let device = CouplingMap::linear(6);
    let mut qc = QuantumCircuit::new(4);
    qc.h(0).cx(0, 2).t(2).cx(1, 3).cx(0, 3).h(3).cx(2, 3);
    for options in [TranspileOptions::sabre(5), TranspileOptions::nassc(5)] {
        let result = transpile(&qc, &device, &options).unwrap();
        assert!(is_mapped(&result.circuit, &device));
        assert_same_output_distribution(&qc, &result.circuit);
    }
}

#[test]
fn grover_routes_correctly_on_montreal() {
    let device = CouplingMap::ibmq_montreal();
    let circuit = grover(4);
    let result = transpile(&circuit, &device, &TranspileOptions::nassc(1)).unwrap();
    assert!(is_mapped(&result.circuit, &device));
    assert!(result.circuit.iter().all(|i| i.gate.in_ibm_basis()));
    assert_same_output_distribution(&circuit, &result.circuit);
}

#[test]
fn bv_routes_correctly_on_grid() {
    let device = CouplingMap::grid(3, 3);
    let circuit = bernstein_vazirani(6);
    for options in [TranspileOptions::sabre(2), TranspileOptions::nassc(2)] {
        let result = transpile(&circuit, &device, &options).unwrap();
        assert!(is_mapped(&result.circuit, &device));
        assert_same_output_distribution(&circuit, &result.circuit);
    }
}

#[test]
fn qft_and_qpe_route_on_linear_topology() {
    let device = CouplingMap::linear(8);
    for circuit in [qft(5), qpe(5)] {
        let result = transpile(&circuit, &device, &TranspileOptions::nassc(3)).unwrap();
        assert!(is_mapped(&result.circuit, &device));
        assert_same_output_distribution(&circuit, &result.circuit);
    }
}

#[test]
fn adder_roundtrips_through_the_pipeline() {
    let device = CouplingMap::grid(3, 4);
    let circuit = adder(6);
    let result = transpile(&circuit, &device, &TranspileOptions::nassc(4)).unwrap();
    assert!(is_mapped(&result.circuit, &device));
    assert_same_output_distribution(&circuit, &result.circuit);
}

#[test]
fn nassc_beats_or_matches_sabre_on_average_across_benchmarks() {
    let device = CouplingMap::linear(25);
    let circuits = vec![grover(4), vqe(6, 2, 1), qft(8), bernstein_vazirani(10)];
    let runs = 3;
    let mut sabre_total = 0usize;
    let mut nassc_total = 0usize;
    for circuit in &circuits {
        for seed in 0..runs {
            sabre_total += transpile(circuit, &device, &TranspileOptions::sabre(seed))
                .unwrap()
                .cx_count();
            nassc_total += transpile(circuit, &device, &TranspileOptions::nassc(seed))
                .unwrap()
                .cx_count();
        }
    }
    assert!(
        nassc_total <= sabre_total,
        "NASSC total {nassc_total} CNOTs exceeds SABRE total {sabre_total}"
    );
}

#[test]
fn all_optimization_flag_combinations_produce_valid_circuits() {
    let device = CouplingMap::linear(6);
    let circuit = vqe(5, 2, 3);
    for flags in OptimizationFlags::all_combinations() {
        let options = TranspileOptions::nassc_with_flags(9, flags);
        let result = transpile(&circuit, &device, &options).unwrap();
        assert!(
            is_mapped(&result.circuit, &device),
            "flags {}",
            flags.label()
        );
    }
}

#[test]
fn routing_overhead_is_zero_on_fully_connected_devices() {
    let device = CouplingMap::fully_connected(8);
    let circuit = vqe(8, 2, 4);
    let baseline = optimize_without_routing(&circuit).unwrap();
    let result = transpile(&circuit, &device, &TranspileOptions::nassc(6)).unwrap();
    assert_eq!(result.swap_count, 0);
    assert_eq!(result.cx_count(), baseline.cx_count());
}
