//! The batch engine's determinism contract: `transpile_batch` must equal the
//! corresponding serial `transpile` calls gate-for-gate, layout-for-layout,
//! at every worker count.

// This file deliberately exercises the deprecated pre-session free
// functions: it pins the legacy entry points' behavior (the contract the
// `Transpiler` session must keep matching) until the shims are removed.
// New coverage belongs in `transpiler_session_determinism.rs`.
#![allow(deprecated)]

use nassc::parallel::ThreadPool;
use nassc::{
    transpile, transpile_batch, transpile_batch_on, BatchJob, TranspileOptions, TranspileResult,
};
use nassc_benchmarks::quick_benchmarks;
use nassc_topology::{Calibration, CouplingMap};

/// Asserts everything but the wall-clock matches between two results.
fn assert_identical(serial: &TranspileResult, batched: &TranspileResult, context: &str) {
    assert_eq!(
        serial.swap_count, batched.swap_count,
        "{context}: swap count"
    );
    assert_eq!(
        serial.initial_layout, batched.initial_layout,
        "{context}: initial layout"
    );
    assert_eq!(
        serial.final_layout, batched.final_layout,
        "{context}: final layout"
    );
    // Gate-for-gate: same instruction sequence, not just equal counts.
    assert_eq!(
        serial.circuit.iter().count(),
        batched.circuit.iter().count(),
        "{context}: gate count"
    );
    for (i, (s, b)) in serial
        .circuit
        .iter()
        .zip(batched.circuit.iter())
        .enumerate()
    {
        assert_eq!(s, b, "{context}: instruction {i}");
    }
    assert_eq!(serial.circuit, batched.circuit, "{context}: circuit");
}

#[test]
fn batch_over_eight_seeds_matches_serial_transpile_gate_for_gate() {
    let device = CouplingMap::ibmq_montreal();
    let bench = &quick_benchmarks()[0]; // Grover_4-qubits
    let jobs: Vec<BatchJob> = (0..8)
        .map(|seed| {
            let options = if seed % 2 == 0 {
                TranspileOptions::nassc(seed)
            } else {
                TranspileOptions::sabre(seed)
            };
            BatchJob::new(&bench.circuit, &device, options)
        })
        .collect();

    let batched = transpile_batch(&jobs);
    assert_eq!(batched.len(), 8);
    for (seed, (job, batched)) in jobs.iter().zip(&batched).enumerate() {
        let serial = transpile(job.circuit, job.coupling, &job.options).expect("serial transpile");
        let batched = batched.as_ref().expect("batched transpile");
        assert_identical(&serial, batched, &format!("seed {seed}"));
    }
}

#[test]
fn worker_count_never_changes_results() {
    let device = CouplingMap::linear(25);
    let cal = Calibration::synthetic(&device, 3);
    let bench = &quick_benchmarks()[0];
    let jobs: Vec<BatchJob> = (0..4)
        .flat_map(|seed| {
            [
                BatchJob::new(&bench.circuit, &device, TranspileOptions::nassc(seed)),
                BatchJob::new(
                    &bench.circuit,
                    &device,
                    TranspileOptions::sabre(seed).with_calibration(cal.clone()),
                ),
            ]
        })
        .collect();

    let single = transpile_batch_on(&ThreadPool::new(1), &jobs);
    for workers in [2, 3, 8] {
        let multi = transpile_batch_on(&ThreadPool::new(workers), &jobs);
        for (index, (s, m)) in single.iter().zip(&multi).enumerate() {
            assert_identical(
                s.as_ref().expect("serial"),
                m.as_ref().expect("parallel"),
                &format!("{workers} workers, job {index}"),
            );
        }
    }
}
