//! Property-based tests over the whole stack: random circuits stay
//! semantically equivalent through synthesis, optimization and routing, and
//! structural invariants (coupling compliance, CNOT-cost bounds) always hold.

// This file deliberately exercises the deprecated pre-session free
// functions: it pins the legacy entry points' behavior (the contract the
// `Transpiler` session must keep matching) until the shims are removed.
// New coverage belongs in `transpiler_session_determinism.rs`.
#![allow(deprecated)]

use proptest::prelude::*;

use nassc::{transpile, TranspileOptions};
use nassc_circuit::{circuits_equivalent, Gate, QuantumCircuit};
use nassc_math::Matrix4;
use nassc_passes::{is_mapped, standard_optimization_pipeline};
use nassc_synthesis::{interaction_circuit, synthesize_two_qubit, WeylDecomposition};
use nassc_topology::CouplingMap;

/// A random gate on up to `width` qubits, encoded from simple proptest
/// primitives so shrinking stays meaningful.
fn random_circuit(width: usize, ops: Vec<(u8, usize, usize, f64)>) -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(width);
    for (kind, a, b, angle) in ops {
        let a = a % width;
        let b = b % width;
        match kind % 6 {
            0 => {
                qc.h(a);
            }
            1 => {
                qc.rz(angle, a);
            }
            2 => {
                qc.t(a);
            }
            3 => {
                qc.x(a);
            }
            _ => {
                if a != b {
                    qc.cx(a, b);
                }
            }
        }
    }
    qc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn weyl_decomposition_reconstructs_random_interactions(
        a in -1.5f64..1.5, b in -1.5f64..1.5, c in -1.5f64..1.5,
        t1 in 0.0f64..3.0, t2 in -3.0f64..3.0,
    ) {
        // Build a two-qubit unitary from locals and an interaction.
        let local = Gate::U(t1, t2, 0.4).matrix2().unwrap().kron(&Gate::Ry(t2).matrix2().unwrap());
        let interaction = nassc_synthesis::interaction_matrix(a, b, c);
        let target = local.mul(&interaction);
        let d = WeylDecomposition::new(&target).unwrap();
        prop_assert!(d.reconstruct().approx_eq(&target, 1e-6));
        prop_assert!(d.cnot_cost() <= 3);
    }

    #[test]
    fn two_qubit_synthesis_is_exact_and_bounded(
        a in -1.5f64..1.5, b in -1.5f64..1.5, c in -1.5f64..1.5,
    ) {
        let target = nassc_synthesis::interaction_matrix(a, b, c).mul(&Matrix4::cnot());
        let circuit = synthesize_two_qubit(&target, 0, 1).unwrap();
        let cx = circuit.iter().filter(|i| i.gate == Gate::Cx).count();
        prop_assert!(cx <= 3);
        let mut qc = QuantumCircuit::new(2);
        for inst in circuit {
            qc.push(inst);
        }
        let mut reference = QuantumCircuit::new(2);
        reference.append(Gate::Unitary2(Box::new(target)), vec![0, 1]);
        prop_assert!(circuits_equivalent(&qc, &reference, 1e-6));
    }

    #[test]
    fn interaction_circuits_match_their_matrices(
        a in -1.5f64..1.5, b in -1.5f64..1.5, c in -1.5f64..1.5,
    ) {
        let circuit = interaction_circuit(a, b, c, 0, 1);
        let mut qc = QuantumCircuit::new(2);
        for inst in circuit {
            qc.push(inst);
        }
        let mut reference = QuantumCircuit::new(2);
        reference.append(
            Gate::Unitary2(Box::new(nassc_synthesis::interaction_matrix(a, b, c))),
            vec![0, 1],
        );
        prop_assert!(circuits_equivalent(&qc, &reference, 1e-6));
    }

    #[test]
    fn optimization_pipeline_preserves_random_circuit_semantics(
        ops in proptest::collection::vec((any::<u8>(), 0usize..4, 0usize..4, -3.0f64..3.0), 5..30),
    ) {
        let circuit = random_circuit(4, ops);
        let optimized = standard_optimization_pipeline().run(&circuit).unwrap();
        prop_assert!(circuits_equivalent(&circuit, &optimized, 1e-6));
        prop_assert!(optimized.cx_count() <= circuit.cx_count());
    }

    #[test]
    fn routed_circuits_always_respect_the_coupling_map(
        ops in proptest::collection::vec((any::<u8>(), 0usize..5, 0usize..5, -3.0f64..3.0), 5..25),
        seed in 0u64..50,
    ) {
        let circuit = random_circuit(5, ops);
        let device = CouplingMap::linear(6);
        for options in [TranspileOptions::sabre(seed), TranspileOptions::nassc(seed)] {
            let result = transpile(&circuit, &device, &options).unwrap();
            prop_assert!(is_mapped(&result.circuit, &device));
            prop_assert!(result.circuit.iter().all(|i| i.gate.in_ibm_basis()));
        }
    }

    #[test]
    fn distance_matrices_are_metrics(rows in 2usize..5, cols in 2usize..5) {
        let map = CouplingMap::grid(rows, cols);
        let d = map.distance_matrix();
        let n = map.num_qubits();
        for i in 0..n {
            prop_assert_eq!(d.hops(i, i), 0);
            for j in 0..n {
                prop_assert_eq!(d.hops(i, j), d.hops(j, i));
                for k in 0..n {
                    prop_assert!(d.hops(i, j) <= d.hops(i, k) + d.hops(k, j));
                }
            }
        }
    }
}
