//! The layout-trials determinism contract: transpile output is bit-identical
//! at every worker count (`NASSC_THREADS` ∈ {1, 2, 8}) for both the
//! single-trial compatibility mode and multi-trial selection, and trial
//! selection is reproducible with deterministic lowest-index tie-breaking.

// This file deliberately exercises the deprecated pre-session free
// functions: it pins the legacy entry points' behavior (the contract the
// `Transpiler` session must keep matching) until the shims are removed.
// New coverage belongs in `transpiler_session_determinism.rs`.
#![allow(deprecated)]

use nassc::circuit::QuantumCircuit;
use nassc::parallel::ThreadPool;
use nassc::sabre::{route_with_policy_on, SabreConfig, SabrePolicy};
use nassc::{
    transpile, transpile_batch_on, BatchJob, NasscPolicy, OptimizationFlags, RouterKind,
    TranspileOptions, TranspileResult,
};
use nassc_topology::{CouplingMap, Layout};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_circuit() -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(6);
    qc.h(0);
    for i in 0..5 {
        qc.cx(i, i + 1);
    }
    qc.cx(0, 5).cx(1, 4).cx(2, 5).cx(0, 3);
    qc
}

fn options_for(router: RouterKind, trials: usize) -> TranspileOptions {
    let base = match router {
        RouterKind::Sabre => TranspileOptions::sabre(7),
        RouterKind::Nassc => TranspileOptions::nassc(7),
    };
    base.with_layout_trials(trials)
}

/// Everything except wall-clock must match, gate for gate.
fn assert_identical(reference: &TranspileResult, other: &TranspileResult, context: &str) {
    assert_eq!(
        reference.initial_layout, other.initial_layout,
        "{context}: initial layout"
    );
    assert_eq!(
        reference.final_layout, other.final_layout,
        "{context}: final layout"
    );
    assert_eq!(
        reference.swap_count, other.swap_count,
        "{context}: swap count"
    );
    assert_eq!(
        reference.chosen_layout_trial, other.chosen_layout_trial,
        "{context}: chosen trial"
    );
    assert_eq!(
        reference.layout_trial_costs, other.layout_trial_costs,
        "{context}: trial costs"
    );
    for (i, (a, b)) in reference
        .circuit
        .iter()
        .zip(other.circuit.iter())
        .enumerate()
    {
        assert_eq!(a, b, "{context}: instruction {i}");
    }
    assert_eq!(reference.circuit, other.circuit, "{context}: circuit");
}

/// The headline contract: `NASSC_THREADS` ∈ {1, 2, 8} × trial counts {1, 4}
/// × both routers, all bit-identical to the single-threaded run.
///
/// This is the only test in this binary that touches `NASSC_THREADS`, so the
/// env sweep cannot race a concurrent reader.
#[test]
fn transpile_is_bit_identical_across_thread_and_trial_counts() {
    let device = CouplingMap::ibmq_montreal();
    let circuit = sample_circuit();
    for router in [RouterKind::Sabre, RouterKind::Nassc] {
        for trials in [1usize, 4] {
            let options = options_for(router, trials);
            let mut reference: Option<TranspileResult> = None;
            for threads in ["1", "2", "8"] {
                std::env::set_var("NASSC_THREADS", threads);
                let result = transpile(&circuit, &device, &options).unwrap();
                let expected_costs = if trials == 1 { 0 } else { trials };
                assert_eq!(result.layout_trial_costs.len(), expected_costs);
                match &reference {
                    None => reference = Some(result),
                    Some(reference) => assert_identical(
                        reference,
                        &result,
                        &format!("{router:?}, {trials} trials, NASSC_THREADS={threads}"),
                    ),
                }
            }
        }
    }
    std::env::remove_var("NASSC_THREADS");
}

/// The batch engine splits its explicit worker budget between jobs and
/// trials; whatever the split, multi-trial results match the serial run.
#[test]
fn batched_multi_trial_jobs_match_serial_pools() {
    let device = CouplingMap::grid(5, 5);
    let circuit = sample_circuit();
    let jobs: Vec<BatchJob> = (0..3)
        .flat_map(|seed| {
            [
                BatchJob::new(
                    &circuit,
                    &device,
                    TranspileOptions::sabre(seed).with_layout_trials(4),
                ),
                BatchJob::new(
                    &circuit,
                    &device,
                    TranspileOptions::nassc(seed).with_layout_trials(4),
                ),
            ]
        })
        .collect();
    let serial = transpile_batch_on(&ThreadPool::new(1), &jobs);
    for workers in [2, 3, 8] {
        let parallel = transpile_batch_on(&ThreadPool::new(workers), &jobs);
        for (index, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_identical(
                s.as_ref().expect("serial"),
                p.as_ref().expect("parallel"),
                &format!("{workers} workers, job {index}"),
            );
        }
    }
}

/// In-pass parallel SWAP scoring: a single routing pass driven through an
/// explicit score pool is bit-identical to the serial pass, for both the
/// SABRE and the NASSC policy, at every worker count. (The
/// `NASSC_THREADS` sweep above exercises the same machinery through the
/// pipeline's budget split; this pins the router-level contract directly.)
#[test]
fn in_pass_parallel_scoring_is_bit_identical() {
    let device = CouplingMap::ibmq_montreal();
    let distances = device.distance_matrix();
    let circuit = sample_circuit();
    let layout = Layout::trivial(device.num_qubits());
    let config = SabreConfig::with_seed(3);

    let sabre_route = |threads: usize| {
        route_with_policy_on(
            &circuit,
            &device,
            &distances,
            &layout,
            &config,
            &mut SabrePolicy,
            &mut StdRng::seed_from_u64(3),
            &ThreadPool::new(threads),
        )
    };
    let nassc_route = |threads: usize| {
        route_with_policy_on(
            &circuit,
            &device,
            &distances,
            &layout,
            &config,
            &mut NasscPolicy::new(OptimizationFlags::all()),
            &mut StdRng::seed_from_u64(3),
            &ThreadPool::new(threads),
        )
    };
    let (sabre_serial, nassc_serial) = (sabre_route(1), nassc_route(1));
    assert!(nassc_serial.swap_count > 0, "inner loop never exercised");
    for threads in [2, 8] {
        let sabre = sabre_route(threads);
        assert_eq!(
            sabre_serial.circuit, sabre.circuit,
            "sabre, {threads} workers"
        );
        assert_eq!(sabre_serial.final_layout, sabre.final_layout);
        let nassc = nassc_route(threads);
        assert_eq!(
            nassc_serial.circuit, nassc.circuit,
            "nassc, {threads} workers"
        );
        assert_eq!(nassc_serial.final_layout, nassc.final_layout);
        assert_eq!(nassc_serial.swap_count, nassc.swap_count);
    }
}

/// Trial selection picks the first trial achieving the minimum cost, and the
/// reported diagnostics are internally consistent.
#[test]
fn chosen_trial_is_the_first_cost_minimum() {
    let device = CouplingMap::ibmq_montreal();
    let circuit = sample_circuit();
    for seed in 0..4 {
        let options = TranspileOptions::nassc(seed).with_layout_trials(6);
        let jobs = [BatchJob::new(&circuit, &device, options)];
        let result = transpile_batch_on(&ThreadPool::new(2), &jobs)
            .pop()
            .unwrap()
            .unwrap();
        assert_eq!(result.layout_trial_costs.len(), 6);
        let best = result.layout_trial_costs[result.chosen_layout_trial];
        let first_min = result
            .layout_trial_costs
            .iter()
            .position(|&c| c == best)
            .unwrap();
        assert_eq!(
            result.chosen_layout_trial, first_min,
            "seed {seed}: tie must break to the lowest trial index"
        );
        assert!(result.layout_trial_costs.iter().all(|&c| c >= best));
    }
}
