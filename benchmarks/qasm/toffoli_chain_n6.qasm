// A chain of Toffoli and Fredkin gates with phase seasoning: stresses the
// 3-qubit decompositions and the s/t phase family.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
h q[0];
h q[1];
ccx q[0],q[1],q[2];
t q[2];
ccx q[1],q[2],q[3];
tdg q[3];
cswap q[0],q[3],q[4];
s q[4];
ccx q[2],q[3],q[4];
sdg q[4];
cswap q[1],q[4],q[5];
ccx q[3],q[4],q[5];
h q[5];
