// Phase-kickback demo with controlled rotations and the cu3 composite,
// exercising expression arithmetic (pi fractions, sqrt) in parameters.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
h q[1];
x q[2];
cp(pi/3) q[0],q[2];
crx(pi/sqrt(4)) q[1],q[2];
cu3(pi/5,pi/7,-pi/9) q[0],q[1];
cry(2*pi/11) q[1],q[0];
crz(-pi/6) q[2],q[0];
h q[0];
h q[1];
