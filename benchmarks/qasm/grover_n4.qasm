// Two Grover iterations over 3 data qubits marking |111>, with a
// ccz built from h/ccx as a user gate.
OPENQASM 2.0;
include "qelib1.inc";
gate ccz a,b,c
{
  h c;
  ccx a,b,c;
  h c;
}
qreg q[4];
creg c[3];
h q[0];
h q[1];
h q[2];
ccz q[0],q[1],q[2];
h q[0];
h q[1];
h q[2];
x q[0];
x q[1];
x q[2];
ccz q[0],q[1],q[2];
x q[0];
x q[1];
x q[2];
h q[0];
h q[1];
h q[2];
ccz q[0],q[1],q[2];
h q[0];
h q[1];
h q[2];
x q[0];
x q[1];
x q[2];
ccz q[0],q[1],q[2];
x q[0];
x q[1];
x q[2];
h q[0];
h q[1];
h q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
