// Bernstein-Vazirani over 4 data qubits, hidden string 1101,
// exercising register broadcast (`h q;`) and a mid-circuit barrier.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[4];
x q[4];
h q;
barrier q;
cx q[0],q[4];
cx q[2],q[4];
cx q[3],q[4];
barrier q;
h q[0];
h q[1];
h q[2];
h q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
