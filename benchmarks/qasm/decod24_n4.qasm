// 2-to-4 decoder on 4 qubits (QASMBench decod24 shape).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
x q[0];
ccx q[0],q[1],q[3];
cx q[0],q[2];
ccx q[1],q[2],q[3];
cx q[1],q[2];
cx q[0],q[1];
ccx q[0],q[1],q[2];
cx q[3],q[0];
measure q -> c;
