// Small reversible mod-5 arithmetic netlist (QASMBench style).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
x q[0];
x q[2];
ccx q[1],q[2],q[4];
cx q[3],q[4];
ccx q[0],q[3],q[2];
cx q[4],q[0];
ccx q[2],q[4],q[1];
cx q[1],q[3];
ccx q[0],q[1],q[4];
cx q[2],q[0];
measure q -> c;
